let benchmarks () = Ssp_workloads.Suite.all

let table1 ppf () =
  Format.fprintf ppf
    "@[<v>Table 1. Modeled research Itanium processors@,@,\
     == In-order model ==@,%a@,@,== Out-of-order model ==@,%a@,@]"
    Ssp_machine.Config.pp Ssp_machine.Config.in_order Ssp_machine.Config.pp
    Ssp_machine.Config.out_of_order

let fig2 ?setting ppf () =
  let rows =
    List.concat_map
      (fun w ->
        let r = Experiment.run_benchmark ?setting w in
        [
          [
            r.Experiment.name ^ " (io)";
            Render.f2
              (Experiment.speedup ~baseline:r.Experiment.io_base
                 r.Experiment.io_pmem);
            Render.f2
              (Experiment.speedup ~baseline:r.Experiment.io_base
                 r.Experiment.io_pdel);
          ];
          [
            r.Experiment.name ^ " (ooo)";
            Render.f2
              (Experiment.speedup ~baseline:r.Experiment.ooo_base
                 r.Experiment.ooo_pmem);
            Render.f2
              (Experiment.speedup ~baseline:r.Experiment.ooo_base
                 r.Experiment.ooo_pdel);
          ];
        ])
      (benchmarks ())
  in
  Format.fprintf ppf
    "@[<v>Figure 2. Speedup assuming perfect memory vs. assuming delinquent \
     loads always hit the cache@,@,";
  Render.table ppf
    ~header:[ "benchmark"; "perfect memory"; "perfect delinq." ]
    rows;
  Format.fprintf ppf "@]"

let table2 ?setting ppf () =
  let rows =
    List.map
      (fun w ->
        let r = Experiment.run_benchmark ?setting w in
        let n, interproc, size, live = Ssp.Report.table2_row r.Experiment.report in
        [
          r.Experiment.name;
          string_of_int n;
          string_of_int interproc;
          Printf.sprintf "%.1f" size;
          Printf.sprintf "%.1f" live;
        ])
      (benchmarks ())
  in
  Format.fprintf ppf "@[<v>Table 2. Slice characteristics@,@,";
  Render.table ppf
    ~header:
      [ "Benchmark"; "Slices (#)"; "Interproc slices (#)"; "Average size";
        "Average # live-in" ]
    rows;
  Format.fprintf ppf "@]"

let fig8_data ?setting () =
  List.map
    (fun w ->
      let r = Experiment.run_benchmark ?setting w in
      let base = r.Experiment.io_base in
      ( r.Experiment.name,
        Experiment.speedup ~baseline:base r.Experiment.io_ssp,
        Experiment.speedup ~baseline:base r.Experiment.ooo_base,
        Experiment.speedup ~baseline:base r.Experiment.ooo_ssp ))
    (benchmarks ())

let fig8 ?setting ppf () =
  let data = fig8_data ?setting () in
  let avg f =
    List.fold_left (fun acc x -> acc +. f x) 0.0 data
    /. float_of_int (List.length data)
  in
  let rows =
    List.map
      (fun (name, a, b, c) ->
        [ name; Render.f2 a; Render.f2 b; Render.f2 c;
          Render.bar a ~max:5.0 ~width:25 ])
      data
    @ [
        [
          "average";
          Render.f2 (avg (fun (_, a, _, _) -> a));
          Render.f2 (avg (fun (_, _, b, _) -> b));
          Render.f2 (avg (fun (_, _, _, c) -> c));
          "";
        ];
      ]
  in
  Format.fprintf ppf
    "@[<v>Figure 8. Speedups of SSP, OOO model, SSP+OOO model over the \
     baseline in-order model@,@,";
  Render.table ppf
    ~header:[ "benchmark"; "in-order+SSP"; "OOO"; "OOO+SSP"; "in-order+SSP bar" ]
    rows;
  Format.fprintf ppf "@]"

(* Figure 9: delinquent-load satisfaction breakdown. *)
let fig9_rows (r : Experiment.runs) =
  let breakdown tag (s : Ssp_sim.Stats.t) =
    let acc =
      Ssp_ir.Iref.Tbl.fold
        (fun iref (ls : Ssp_sim.Stats.load_site) acc ->
          if Ssp_ir.Iref.Set.mem iref r.Experiment.delinquent then
            match acc with
            | None -> Some (Ssp_sim.Stats.{
                accesses = ls.accesses; l1 = ls.l1; l2 = ls.l2;
                l2_partial = ls.l2_partial; l3 = ls.l3;
                l3_partial = ls.l3_partial; mem = ls.mem;
                mem_partial = ls.mem_partial })
            | Some t ->
              t.Ssp_sim.Stats.accesses <- t.Ssp_sim.Stats.accesses + ls.Ssp_sim.Stats.accesses;
              t.Ssp_sim.Stats.l1 <- t.Ssp_sim.Stats.l1 + ls.Ssp_sim.Stats.l1;
              t.Ssp_sim.Stats.l2 <- t.Ssp_sim.Stats.l2 + ls.Ssp_sim.Stats.l2;
              t.Ssp_sim.Stats.l2_partial <- t.Ssp_sim.Stats.l2_partial + ls.Ssp_sim.Stats.l2_partial;
              t.Ssp_sim.Stats.l3 <- t.Ssp_sim.Stats.l3 + ls.Ssp_sim.Stats.l3;
              t.Ssp_sim.Stats.l3_partial <- t.Ssp_sim.Stats.l3_partial + ls.Ssp_sim.Stats.l3_partial;
              t.Ssp_sim.Stats.mem <- t.Ssp_sim.Stats.mem + ls.Ssp_sim.Stats.mem;
              t.Ssp_sim.Stats.mem_partial <- t.Ssp_sim.Stats.mem_partial + ls.Ssp_sim.Stats.mem_partial;
              Some t
          else acc)
        s.Ssp_sim.Stats.loads None
    in
    match acc with
    | None -> [ tag; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
    | Some t ->
      let open Ssp_sim.Stats in
      let total = max 1 t.accesses in
      let miss_rate =
        float_of_int (total - t.l1) /. float_of_int total
      in
      let part x = Render.pct (float_of_int x /. float_of_int total) in
      [
        tag;
        Render.pct miss_rate;
        part t.l2;
        part t.l2_partial;
        part t.l3;
        part t.l3_partial;
        part t.mem;
        part t.mem_partial;
      ]
  in
  [
    breakdown "  io" r.Experiment.io_base;
    breakdown "  io+SSP" r.Experiment.io_ssp;
    breakdown "  ooo" r.Experiment.ooo_base;
    breakdown "  ooo+SSP" r.Experiment.ooo_ssp;
  ]

let fig9 ?setting ppf () =
  Format.fprintf ppf
    "@[<v>Figure 9. Where delinquent loads are satisfied when missing L1 \
     (%% of all delinquent accesses; height of a bar = miss rate)@,@,";
  List.iter
    (fun w ->
      let r = Experiment.run_benchmark ?setting w in
      Format.fprintf ppf "%s:@," r.Experiment.name;
      Render.table ppf
        ~header:
          [ "config"; "L1 miss"; "L2"; "L2 part"; "L3"; "L3 part"; "Mem";
            "Mem part" ]
        (fig9_rows r);
      Format.fprintf ppf "@,")
    (benchmarks ());
  Format.fprintf ppf "@]"

(* Figure 10: normalized cycle breakdown for em3d, treeadd.df, vpr. *)
let fig10_benchmarks = [ "em3d"; "treeadd.df"; "vpr" ]

let fig10 ?setting ppf () =
  Format.fprintf ppf
    "@[<v>Figure 10. Cycle breakdown normalized to the baseline in-order \
     cycle count@,@,";
  List.iter
    (fun name ->
      let w = Ssp_workloads.Suite.find name in
      let r = Experiment.run_benchmark ?setting w in
      let base = float_of_int r.Experiment.io_base.Ssp_sim.Stats.cycles in
      let row tag (s : Ssp_sim.Stats.t) =
        let cat c =
          Render.pct
            (float_of_int
               s.Ssp_sim.Stats.categories.(Ssp_sim.Stats.category_index c)
            /. base)
        in
        let open Ssp_sim.Stats in
        [
          tag;
          cat Cat_l3;
          cat Cat_l2;
          cat Cat_l1;
          cat Cat_cache_exec;
          cat Cat_exec;
          cat Cat_other;
          Render.pct (float_of_int s.cycles /. base);
        ]
      in
      Format.fprintf ppf "%s:@," name;
      Render.table ppf
        ~header:
          [ "config"; "L3"; "L2"; "L1"; "Cache+Exec"; "Exec"; "Other";
            "total" ]
        [
          row "  io" r.Experiment.io_base;
          row "  io+SSP" r.Experiment.io_ssp;
          row "  ooo" r.Experiment.ooo_base;
          row "  ooo+SSP" r.Experiment.ooo_ssp;
        ];
      Format.fprintf ppf "@,")
    fig10_benchmarks;
  Format.fprintf ppf "@]"
