(** §4.5: automatic vs. hand adaptation on mcf and health, both pipelines.

    The paper reports (in-order / OOO speedup over the same baseline):
    mcf hand 73 % vs tool 37 % (both ≈ flat on OOO); health hand 130 % vs
    tool 103 % in-order, hand 200 % vs tool 120 % on OOO — the tool loses
    12–27 % of the hand version's win. *)

type row = {
  benchmark : string;
  pipeline : string;
  auto_speedup : float;
  hand_speedup : float;
  retained : float;  (** auto gain as a fraction of hand gain *)
}

val run : ?setting:Experiment.setting -> unit -> row list

val print : ?setting:Experiment.setting -> Format.formatter -> unit -> unit
