let () =
  let name = Sys.argv.(1) in
  let scale = int_of_string Sys.argv.(2) in
  let div = int_of_string Sys.argv.(3) in
  let prog = Ssp_workloads.(Workload.program (Suite.find name) ~scale) in
  let cfg = Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order div in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  Format.printf "%a@." Ssp.Delinquent.pp r.Ssp.Adapt.delinquent;
  Format.printf "%a@." Ssp.Report.pp r.Ssp.Adapt.report;
  let base = Ssp_sim.Inorder.run cfg prog in
  let ssp = Ssp_sim.Inorder.run cfg r.Ssp.Adapt.prog in
  Format.printf "base %d ssp %d speedup %.3f spawns %d chk %d prefetch %d@."
    base.Ssp_sim.Stats.cycles ssp.Ssp_sim.Stats.cycles
    (float_of_int base.Ssp_sim.Stats.cycles /. float_of_int ssp.Ssp_sim.Stats.cycles)
    ssp.Ssp_sim.Stats.spawns ssp.Ssp_sim.Stats.chk_fired ssp.Ssp_sim.Stats.prefetches
