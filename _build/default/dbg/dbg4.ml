let () =
  let t0 = Unix.gettimeofday () in
  let name = Sys.argv.(1) in
  let w = Ssp_workloads.Suite.find name in
  let r = Ssp_harness.Experiment.run_benchmark w in
  Format.printf "%s: base %d cycles; io+ssp %.2f ooo %.2f ooo+ssp %.2f pmem %.2f pdel %.2f [%.0fs]@."
    name r.Ssp_harness.Experiment.io_base.Ssp_sim.Stats.cycles
    (Ssp_harness.Experiment.speedup ~baseline:r.Ssp_harness.Experiment.io_base r.Ssp_harness.Experiment.io_ssp)
    (Ssp_harness.Experiment.speedup ~baseline:r.Ssp_harness.Experiment.io_base r.Ssp_harness.Experiment.ooo_base)
    (Ssp_harness.Experiment.speedup ~baseline:r.Ssp_harness.Experiment.io_base r.Ssp_harness.Experiment.ooo_ssp)
    (Ssp_harness.Experiment.speedup ~baseline:r.Ssp_harness.Experiment.io_base r.Ssp_harness.Experiment.io_pmem)
    (Ssp_harness.Experiment.speedup ~baseline:r.Ssp_harness.Experiment.io_base r.Ssp_harness.Experiment.io_pdel)
    (Unix.gettimeofday () -. t0)
