let () =
  let name = Sys.argv.(1) in
  let scale = int_of_string Sys.argv.(2) in
  let refr = int_of_string Sys.argv.(3) in
  let minfree = int_of_string Sys.argv.(4) in
  let prog = Ssp_workloads.(Workload.program (Suite.find name) ~scale) in
  let cfg = { Ssp_machine.Config.in_order with
              Ssp_machine.Config.chk_refractory = refr; chk_min_free = minfree } in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  let base = Ssp_sim.Inorder.run cfg prog in
  let ssp = Ssp_sim.Inorder.run cfg r.Ssp.Adapt.prog in
  Format.printf "refr=%d minfree=%d speedup %.3f spawns %d chk %d@."
    refr minfree
    (float_of_int base.Ssp_sim.Stats.cycles /. float_of_int ssp.Ssp_sim.Stats.cycles)
    ssp.Ssp_sim.Stats.spawns ssp.Ssp_sim.Stats.chk_fired
