dbg/dbg4.mli:
