dbg/dbg6.ml: Array Format Ssp Ssp_ir Ssp_isa Ssp_machine Ssp_profiling Ssp_workloads String Suite Workload
