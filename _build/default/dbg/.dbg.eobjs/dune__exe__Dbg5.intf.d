dbg/dbg5.mli:
