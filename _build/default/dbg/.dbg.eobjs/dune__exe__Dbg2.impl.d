dbg/dbg2.ml: Array Format Ssp Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads Suite Sys Workload
