dbg/dbg4.ml: Array Format Ssp_harness Ssp_sim Ssp_workloads Sys Unix
