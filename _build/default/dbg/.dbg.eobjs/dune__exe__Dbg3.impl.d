dbg/dbg3.ml: Format Ssp Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads Suite Workload
