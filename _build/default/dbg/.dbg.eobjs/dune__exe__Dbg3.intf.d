dbg/dbg3.mli:
