dbg/dbg7.mli:
