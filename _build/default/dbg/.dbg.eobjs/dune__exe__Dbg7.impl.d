dbg/dbg7.ml: Format List Printf Ssp Ssp_analysis Ssp_machine Ssp_minic Ssp_profiling
