dbg/dbg.mli:
