dbg/dbg2.mli:
