dbg/dbg6.mli:
