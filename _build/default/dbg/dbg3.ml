let () =
  let prog = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:40) in
  let cfg = Ssp_machine.Config.out_of_order in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  let base = Ssp_sim.Ooo.run cfg prog in
  (* adapted binary but zero speculative contexts: chk.c never fires *)
  let cfg1 = { cfg with Ssp_machine.Config.n_contexts = 1 } in
  let ssp0 = Ssp_sim.Ooo.run cfg1 r.Ssp.Adapt.prog in
  (* adapted with 2 contexts (1 spec), and full 4 *)
  let cfg2 = { cfg with Ssp_machine.Config.n_contexts = 2 } in
  let ssp1 = Ssp_sim.Ooo.run cfg2 r.Ssp.Adapt.prog in
  let ssp3 = Ssp_sim.Ooo.run cfg r.Ssp.Adapt.prog in
  Format.printf "base %d | adapted-0spec %d | 1spec %d | 3spec %d@."
    base.Ssp_sim.Stats.cycles ssp0.Ssp_sim.Stats.cycles
    ssp1.Ssp_sim.Stats.cycles ssp3.Ssp_sim.Stats.cycles
