let mcf_like scale =
  Printf.sprintf
    "struct node_t { int potential; int pad; }\n\
     struct arc_t { int cost; node_t* tail; int ident; int pad; }\n\
     arc_t* arcs;\n\
     node_t* nodes;\n\
     int main() {\n\
    \  int narcs = %d;\n\
    \  int nnodes = %d;\n\
    \  nodes = newarray(node_t, nnodes);\n\
    \  for (int i = 0; i < nnodes; i = i + 1) { node_t* n = nodes + i; n->potential = i; }\n\
    \  arcs = newarray(arc_t, narcs);\n\
    \  for (int i = 0; i < narcs; i = i + 1) { arc_t* a = arcs + i; a->cost = i; a->tail = nodes + rand() %% nnodes; a->ident = 1; }\n\
    \  int s = 0;\n\
    \  arc_t* arc = arcs;\n\
    \  arc_t* stop = arcs + narcs;\n\
    \  while (arc < stop) { s = s + arc->tail->potential; arc = arc + 1; }\n\
    \  print_int(s);\n\
    \  return 0;\n\
     }"
    (3000 * scale) (4000 * scale)
let () =
  let prog = Ssp_minic.Frontend.compile (mcf_like 2) in
  let profile = Ssp_profiling.Collect.collect
    ~config:(Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 32) prog in
  let d = Ssp.Delinquent.identify prog profile in
  Format.printf "%a@." Ssp.Delinquent.pp d;
  let regions = Ssp_analysis.Regions.compute prog in
  let load = List.hd d.Ssp.Delinquent.loads in
  let region = Ssp_analysis.Regions.innermost_at regions load.Ssp.Delinquent.iref in
  match Ssp.Slicer.slice_region regions profile ~region load with
  | None -> print_endline "no slice"
  | Some s -> Format.printf "%a@." (Ssp.Slice.pp prog) s
