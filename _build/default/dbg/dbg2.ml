let () =
  let name = Sys.argv.(1) in
  let scale = int_of_string Sys.argv.(2) in
  let div = int_of_string Sys.argv.(3) in
  let refractory = if Array.length Sys.argv > 4 then int_of_string Sys.argv.(4) else 64 in
  let prog = Ssp_workloads.(Workload.program (Suite.find name) ~scale) in
  let cfg = Ssp_machine.Config.scale_caches Ssp_machine.Config.out_of_order div in
  let cfg = { cfg with Ssp_machine.Config.chk_refractory = refractory } in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  let base = Ssp_sim.Ooo.run cfg prog in
  let ssp = Ssp_sim.Ooo.run cfg r.Ssp.Adapt.prog in
  Format.printf "== base ==@.%a@.== ssp ==@.%a@.speedup %.3f@."
    Ssp_sim.Stats.pp base Ssp_sim.Stats.pp ssp
    (float_of_int base.Ssp_sim.Stats.cycles /. float_of_int ssp.Ssp_sim.Stats.cycles)
