let () =
  let prog = Ssp_workloads.(Workload.program (Suite.find "health") ~scale:4) in
  let cfg = Ssp_machine.Config.in_order in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  let f = Ssp_ir.Prog.find_func r.Ssp.Adapt.prog "simulate" in
  Array.iter (fun (b : Ssp_ir.Prog.block) ->
    if String.length b.Ssp_ir.Prog.label >= 4 && String.sub b.Ssp_ir.Prog.label 0 4 = "ssp_" then begin
      Format.printf "%s:@." b.Ssp_ir.Prog.label;
      Array.iter (fun op -> Format.printf "  %s@." (Ssp_isa.Op.to_string op)) b.Ssp_ir.Prog.ops
    end) f.Ssp_ir.Prog.blocks
