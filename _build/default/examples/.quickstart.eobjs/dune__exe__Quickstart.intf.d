examples/quickstart.mli:
