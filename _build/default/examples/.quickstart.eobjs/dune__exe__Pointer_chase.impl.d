examples/pointer_chase.ml: Array Format List Printf Ssp Ssp_analysis Ssp_ir Ssp_isa Ssp_machine Ssp_profiling Ssp_workloads String
