examples/quickstart.ml: Format List Ssp Ssp_ir Ssp_machine Ssp_minic Ssp_profiling Ssp_sim
