examples/tree_search.ml: Format List Ssp Ssp_machine Ssp_minic Ssp_profiling Ssp_sim
