examples/machine_explorer.ml: Format List Ssp Ssp_machine Ssp_profiling Ssp_sim Ssp_workloads
