(* Interprocedural slices on recursive data structures: the treeadd /
   health pattern.

     dune exec examples/tree_search.exe

   The delinquent loads live in a recursive function whose only live-in is
   its parameter, so the tool binds the slice at the call sites (the
   paper's context-sensitive slicing, §3.1) and the speculative threads
   prefetch each child subtree as the recursion descends. Also compares
   the automatic adaptation against the hand-adapted version with one
   recursion level inlined (§4.5). *)

let source =
  {|
struct item { int key; int weight; }
struct tree { item* payload; tree* left; tree* right; }

int pad_sink;

void pad() {
  int k = rand() % 4;
  if (k > 0) {
    int* junk = newarray(int, k * 3);
    junk[0] = 1;
    pad_sink = pad_sink + junk[0];
  }
}

tree* build(int depth) {
  tree* t = new tree;
  pad();
  t->payload = new item;
  t->payload->key = rand() % 1000;
  t->payload->weight = rand() % 10;
  if (depth > 0) {
    t->left = build(depth - 1);
    t->right = build(depth - 1);
  } else {
    t->left = null;
    t->right = null;
  }
  return t;
}

// Count keys below a threshold: a full-tree search dereferencing both the
// node and its payload — two delinquent loads per visit.
int search(tree* t, int limit) {
  if (t == null) { return 0; }
  int hit = 0;
  if (t->payload->key < limit) {
    hit = t->payload->weight;
  }
  return hit + search(t->left, limit) + search(t->right, limit);
}

int main() {
  tree* root = build(16);
  int total = 0;
  for (int r = 0; r < 2; r = r + 1) {
    total = total + search(root, 500);
  }
  print_int(total);
  return 0;
}
|}

let () =
  let prog = Ssp_minic.Frontend.compile source in
  let profile = Ssp_profiling.Collect.collect prog in
  let config = Ssp_machine.Config.in_order in
  let result = Ssp.Adapt.run ~config prog profile in
  Format.printf "%a@.@." Ssp.Report.pp result.Ssp.Adapt.report;
  List.iter
    (fun (c : Ssp.Select.choice) ->
      let slice = c.Ssp.Select.schedule.Ssp.Schedule.slice in
      if slice.Ssp.Slice.interprocedural then begin
        Format.printf
          "interprocedural slice in %s: triggers at %d call sites@."
          slice.Ssp.Slice.fn
          (List.length c.Ssp.Select.triggers);
        List.iter
          (fun (t : Ssp.Trigger.t) ->
            Format.printf "  trigger in %s, block %d, before instr %d@."
              t.Ssp.Trigger.fn t.Ssp.Trigger.blk t.Ssp.Trigger.pos)
          c.Ssp.Select.triggers
      end)
    result.Ssp.Adapt.choices;
  let base = Ssp_sim.Inorder.run config prog in
  let ssp = Ssp_sim.Inorder.run config result.Ssp.Adapt.prog in
  assert (base.Ssp_sim.Stats.outputs = ssp.Ssp_sim.Stats.outputs);
  Format.printf "@.baseline %d cycles, SSP %d cycles (%.2fx)@."
    base.Ssp_sim.Stats.cycles ssp.Ssp_sim.Stats.cycles
    (float_of_int base.Ssp_sim.Stats.cycles
    /. float_of_int ssp.Ssp_sim.Stats.cycles)
