(* Machine-model exploration: how SSP's benefit depends on the hardware.

     dune exec examples/machine_explorer.exe

   Sweeps the parameters the paper's analysis hinges on — memory latency,
   number of hardware thread contexts, and the spawn-flush assumption — on
   the mcf kernel, and prints the resulting speedups. This reproduces the
   qualitative claims of §4.3/§4.4: the longer the memory latency (the
   in-order model stalls more), the bigger SSP's win; more contexts sustain
   longer chains; the exception-like spawn flush is a real tax. *)

let speedup config prog profile =
  let result = Ssp.Adapt.run ~config prog profile in
  let base = Ssp_sim.Inorder.run config prog in
  let ssp = Ssp_sim.Inorder.run config result.Ssp.Adapt.prog in
  ( float_of_int base.Ssp_sim.Stats.cycles
    /. float_of_int ssp.Ssp_sim.Stats.cycles,
    base.Ssp_sim.Stats.cycles )

let () =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:8 in
  let base_cfg =
    Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 8
  in
  let profile = Ssp_profiling.Collect.collect ~config:base_cfg prog in

  Format.printf "memory latency sweep (in-order, 4 contexts):@.";
  List.iter
    (fun lat ->
      let cfg = { base_cfg with Ssp_machine.Config.mem_latency = lat } in
      let s, cycles = speedup cfg prog profile in
      Format.printf "  %4d cycles to memory: baseline %9d cycles, SSP %.2fx@."
        lat cycles s)
    [ 60; 120; 230; 460 ];

  Format.printf "@.hardware context sweep (230-cycle memory):@.";
  List.iter
    (fun n ->
      let cfg = { base_cfg with Ssp_machine.Config.n_contexts = n } in
      let s, _ = speedup cfg prog profile in
      Format.printf "  %d contexts: SSP %.2fx%s@." n s
        (if n = 1 then "  (no spare context: chk.c never fires)" else ""))
    [ 1; 2; 4; 8 ];

  Format.printf "@.spawn-flush assumption (4 contexts):@.";
  List.iter
    (fun flush ->
      let cfg = { base_cfg with Ssp_machine.Config.spawn_flush = flush } in
      let s, _ = speedup cfg prog profile in
      Format.printf "  flush %-5b: SSP %.2fx@." flush s)
    [ true; false ]
