(* Quickstart: the whole SSP pipeline on a small pointer-chasing program.

     dune exec examples/quickstart.exe

   1. compile mini-C to the virtual ISA;
   2. profile it (block frequencies + cache behaviour);
   3. run the post-pass tool: find delinquent loads, slice, schedule,
      place triggers, rewrite the binary;
   4. simulate original and adapted binaries on the in-order model. *)

let source =
  {|
// Scattered pointer dereferences driven by an arithmetic induction: the
// pattern speculative precomputation is best at. The table holds pointers
// to randomly placed records, so table[i]->value misses the caches while
// i itself is perfectly precomputable -- chained speculative threads run
// arbitrarily far ahead of the main loop.
struct record { int value; int weight; }

record** table;
int nrecords;

void build() {
  nrecords = 120000;
  table = newarray(record*, nrecords);
  record* arena = newarray(record, nrecords);
  for (int i = 0; i < nrecords; i = i + 1) {
    record* r = arena + rand() % nrecords;
    r->value = i % 97;
    r->weight = i % 7;
    table[i] = r;
  }
}

int scan() {
  int sum = 0;
  for (int i = 0; i < nrecords; i = i + 1) {
    record* r = table[i];
    sum = sum + r->value * r->weight;
  }
  return sum;
}

int main() {
  build();
  int total = 0;
  for (int pass = 0; pass < 2; pass = pass + 1) {
    total = total + scan();
  }
  print_int(total);
  return 0;
}
|}

let () =
  Format.printf "== 1. Compile ==@.";
  let prog = Ssp_minic.Frontend.compile source in
  Format.printf "compiled: %d instructions in %d functions@.@."
    (Ssp_ir.Prog.instr_count prog)
    (List.length (Ssp_ir.Prog.funcs_in_order prog));

  Format.printf "== 2. Profile ==@.";
  let profile = Ssp_profiling.Collect.collect prog in
  Format.printf "profiled %d dynamic instructions@.@."
    profile.Ssp_profiling.Profile.total_instrs;

  Format.printf "== 3. Adapt (the post-pass tool) ==@.";
  let config = Ssp_machine.Config.in_order in
  let result = Ssp.Adapt.run ~config prog profile in
  Format.printf "%a@.@." Ssp.Delinquent.pp result.Ssp.Adapt.delinquent;
  Format.printf "%a@.@." Ssp.Report.pp result.Ssp.Adapt.report;

  Format.printf "== 4. Simulate (in-order model) ==@.";
  let base = Ssp_sim.Inorder.run config prog in
  let ssp = Ssp_sim.Inorder.run config result.Ssp.Adapt.prog in
  assert (base.Ssp_sim.Stats.outputs = ssp.Ssp_sim.Stats.outputs);
  Format.printf "baseline : %8d cycles (IPC %.3f)@." base.Ssp_sim.Stats.cycles
    (Ssp_sim.Stats.ipc base);
  Format.printf "with SSP : %8d cycles (IPC %.3f), %d spawns, %d prefetches@."
    ssp.Ssp_sim.Stats.cycles (Ssp_sim.Stats.ipc ssp) ssp.Ssp_sim.Stats.spawns
    ssp.Ssp_sim.Stats.prefetches;
  Format.printf "speedup  : %.2fx@."
    (float_of_int base.Ssp_sim.Stats.cycles
    /. float_of_int ssp.Ssp_sim.Stats.cycles)
