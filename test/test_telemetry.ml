(* Tests for the telemetry subsystem: counter/distribution math, span
   nesting, JSON export (validated with a small in-test JSON parser), a
   full pipeline run asserting the expected spans/counters exist, and the
   guarantee that instrumentation changes nothing when telemetry is off. *)

module T = Ssp_telemetry.Telemetry

(* Every test starts from a clean, disabled subsystem and leaves it so:
   the other suites in this binary must see telemetry off. *)
let scoped f () =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

(* ---- a minimal JSON parser, enough to validate [T.to_json] output ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (code land 0xff))
        | Some c -> Buffer.add_char b c; advance ()
        | None -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> List.assoc name fields
  | _ -> Alcotest.fail ("not an object looking up " ^ name)

let num = function Num f -> f | _ -> Alcotest.fail "not a number"

(* ---- counters and distributions ---- *)

let test_counter_math =
  scoped @@ fun () ->
  let c = T.counter "t.c" in
  T.incr c;
  T.add c 41;
  let r = T.report () in
  Alcotest.(check (option int)) "count" (Some 42) (List.assoc_opt "t.c" r.T.r_counters);
  (* interning: the same name yields the same counter *)
  T.incr (T.counter "t.c");
  Alcotest.(check int) "interned" 43 (List.assoc "t.c" (T.report ()).T.r_counters);
  (* disabled increments are dropped *)
  T.set_enabled false;
  T.incr c;
  T.count "t.c" 100;
  T.set_enabled true;
  Alcotest.(check int) "gated" 43 (List.assoc "t.c" (T.report ()).T.r_counters)

let test_dist_math =
  scoped @@ fun () ->
  let d = T.dist "t.d" in
  List.iter (fun v -> T.observe d v) [ 2.0; 4.0; 6.0; 8.0 ];
  let r = T.report () in
  let s = List.assoc "t.d" r.T.r_dists in
  Alcotest.(check int) "n" 4 s.T.ds_n;
  Alcotest.(check (float 1e-9)) "sum" 20.0 s.T.ds_sum;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.T.ds_mean;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.T.ds_min;
  Alcotest.(check (float 1e-9)) "max" 8.0 s.T.ds_max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 5.0) s.T.ds_stddev;
  (* empty distributions are not reported *)
  ignore (T.dist "t.empty");
  Alcotest.(check bool) "empty hidden" false
    (List.mem_assoc "t.empty" (T.report ()).T.r_dists)

let test_series =
  scoped @@ fun () ->
  let s = T.series "t.s" in
  T.sample s ~x:1.0 ~y:10.0;
  T.sample s ~x:2.0 ~y:20.0;
  let r = T.report () in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "in order" [ (1.0, 10.0); (2.0, 20.0) ]
    (List.assoc "t.s" r.T.r_series)

(* Samples recorded out of x-order (e.g. from racing domains) export
   sorted, so downstream plotting never sees a zig-zag artifact. *)
let test_series_sorted =
  scoped @@ fun () ->
  let s = T.series "t.sorted" in
  T.sample s ~x:3.0 ~y:30.0;
  T.sample s ~x:1.0 ~y:10.0;
  T.sample s ~x:2.0 ~y:20.0;
  let r = T.report () in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "sorted by x"
    [ (1.0, 10.0); (2.0, 20.0); (3.0, 30.0) ]
    (List.assoc "t.sorted" r.T.r_series)

(* ---- log-bucketed quantile histograms ---- *)

(* With [hist_subbuckets] sub-buckets per octave the bucket edges are
   2^(1/8) apart, so a geometric-midpoint estimate is within
   2^(1/16) - 1 (< 4.5%) of the true value — check against a known
   stream with a safety margin. *)
let test_hist_quantiles =
  scoped @@ fun () ->
  let h = T.hist "t.h" in
  for i = 1 to 1000 do
    T.hobserve h (float_of_int i)
  done;
  let r = T.report () in
  let s = List.assoc "t.h" r.T.r_hists in
  Alcotest.(check int) "n" 1000 s.T.hs_n;
  Alcotest.(check (float 1e-9)) "sum" 500500.0 s.T.hs_sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.T.hs_min;
  Alcotest.(check (float 1e-9)) "max" 1000.0 s.T.hs_max;
  List.iter
    (fun (q, truth) ->
      let est = T.hist_quantile s q in
      let rel = Float.abs (est -. truth) /. truth in
      if rel > 0.05 then
        Alcotest.failf "q=%.3f: estimate %.2f vs true %.2f (rel %.3f)" q est
          truth rel)
    [ (0.5, 500.); (0.9, 900.); (0.99, 990.); (0.999, 999.) ];
  (* quantiles clamp into the observed range *)
  Alcotest.(check bool) "p999 <= max" true (T.hist_quantile s 0.999 <= 1000.0);
  Alcotest.(check bool) "p0 >= min" true (T.hist_quantile s 0.0001 >= 1.0);
  (* the empty histogram reports 0 and stays out of the report *)
  Alcotest.(check (float 0.)) "empty" 0.0
    (T.hist_quantile (T.empty_hist_summary ()) 0.99)

(* The acceptance property of the stats plane: merging per-shard
   histograms bucket-wise is EXACT — quantiles of the merged summary
   equal quantiles of a single histogram fed the union of the streams,
   bit for bit, because the layout is fixed at compile time. *)
let test_hist_merge_exact =
  scoped @@ fun () ->
  let stream_a = List.init 400 (fun i -> 0.05 +. (float_of_int i *. 0.37)) in
  let stream_b = List.init 300 (fun i -> 3.0 +. (float_of_int i *. 5.11)) in
  let summarize name values =
    T.reset ();
    let h = T.hist name in
    List.iter (T.hobserve h) values;
    List.assoc name (T.report ()).T.r_hists
  in
  let sa = summarize "t.m" stream_a in
  let sb = summarize "t.m" stream_b in
  let union = summarize "t.m" (stream_a @ stream_b) in
  let merged = T.merge_hist_summary sa sb in
  Alcotest.(check int) "n" union.T.hs_n merged.T.hs_n;
  Alcotest.(check (float 1e-9)) "sum" union.T.hs_sum merged.T.hs_sum;
  Alcotest.(check (float 0.)) "min" union.T.hs_min merged.T.hs_min;
  Alcotest.(check (float 0.)) "max" union.T.hs_max merged.T.hs_max;
  Alcotest.(check (array int)) "buckets" union.T.hs_counts merged.T.hs_counts;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%.3f exact" q)
        (T.hist_quantile union q) (T.hist_quantile merged q))
    [ 0.5; 0.9; 0.99; 0.999 ];
  (* merging a layout from another build must fail loudly *)
  let alien = { sa with T.hs_counts = Array.make 7 0 } in
  (match T.merge_hist_summary sa alien with
  | _ -> Alcotest.fail "layout mismatch accepted"
  | exception Invalid_argument _ -> ())

(* capture_spans diffs the live span tree around a thunk: only spans
   opened inside the window appear, with per-window times. *)
let test_capture_spans =
  scoped @@ fun () ->
  T.with_span "outside" (fun () -> ());
  let (), delta =
    T.capture_spans (fun () ->
        T.with_span "win" (fun () ->
            T.with_span "sub" (fun () -> ());
            T.with_span "sub" (fun () -> ())))
  in
  let names = List.map (fun s -> s.T.sp_name) delta in
  Alcotest.(check (list string)) "window roots" [ "win" ] names;
  (match T.find_span delta [ "win"; "sub" ] with
  | Some s -> Alcotest.(check int) "window calls" 2 s.T.calls
  | None -> Alcotest.fail "nested delta missing");
  Alcotest.(check bool) "outside excluded" true
    (T.find_span delta [ "outside" ] = None)

(* ---- spans ---- *)

let test_span_nesting =
  scoped @@ fun () ->
  T.with_span "outer" (fun () ->
      T.with_span "inner" (fun () -> ());
      T.with_span "inner" (fun () -> ());
      T.with_span "other" (fun () -> ()));
  T.with_span "outer" (fun () -> ());
  let r = T.report () in
  let outer =
    match T.find_span r.T.r_spans [ "outer" ] with
    | Some s -> s
    | None -> Alcotest.fail "outer span missing"
  in
  Alcotest.(check int) "outer calls" 2 outer.T.calls;
  Alcotest.(check bool) "outer timed" true (outer.T.ms >= 0.0);
  (match T.find_span r.T.r_spans [ "outer"; "inner" ] with
  | Some inner -> Alcotest.(check int) "inner merged" 2 inner.T.calls
  | None -> Alcotest.fail "inner span missing");
  Alcotest.(check bool) "no toplevel inner" true
    (T.find_span r.T.r_spans [ "inner" ] = None);
  (* an exception still pops the stack *)
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  T.with_span "after" (fun () -> ());
  Alcotest.(check bool) "stack popped on raise" true
    (T.find_span (T.report ()).T.r_spans [ "after" ] <> None)

let test_json_roundtrip =
  scoped @@ fun () ->
  T.incr (T.counter "j.count");
  T.observe (T.dist "j.dist") 3.5;
  T.sample (T.series "j.series") ~x:1.0 ~y:2.0;
  T.with_span "j.outer" (fun () -> T.with_span "j \"quoted\"" (fun () -> ()));
  let j = parse_json (T.to_json (T.report ())) in
  Alcotest.(check (float 0.)) "counter" 1.0 (num (member "j.count" (member "counters" j)));
  Alcotest.(check (float 1e-9)) "dist mean" 3.5
    (num (member "mean" (member "j.dist" (member "dists" j))));
  (match member "j.series" (member "series" j) with
  | Arr [ Arr [ Num x; Num y ] ] ->
    Alcotest.(check (float 0.)) "x" 1.0 x;
    Alcotest.(check (float 0.)) "y" 2.0 y
  | _ -> Alcotest.fail "series shape");
  match member "spans" j with
  | Arr spans ->
    let outer =
      List.find
        (fun sp -> member "name" sp = Str "j.outer")
        spans
    in
    (match member "children" outer with
    | Arr [ child ] ->
      (* escaping round-trips through the parser *)
      Alcotest.(check bool) "escaped name" true
        (member "name" child = Str "j \"quoted\"");
      Alcotest.(check (float 0.)) "child calls" 1.0 (num (member "calls" child))
    | _ -> Alcotest.fail "children shape")
  | _ -> Alcotest.fail "spans not a list"

(* ---- pipeline integration ---- *)

let small_prog () =
  Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:1)

let test_pipeline_report =
  scoped @@ fun () ->
  let cfg = Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 64 in
  let prog = small_prog () in
  let profile = Ssp_profiling.Collect.collect prog in
  let adapted = Ssp.Adapt.run ~config:cfg prog profile in
  ignore (Ssp_sim.Inorder.run cfg adapted.Ssp.Adapt.prog);
  let r = T.report () in
  List.iter
    (fun path ->
      if T.find_span r.T.r_spans path = None then
        Alcotest.fail ("missing span " ^ String.concat "/" path))
    [
      [ "profile" ];
      [ "adapt" ];
      [ "adapt"; "delinquent" ];
      [ "adapt"; "adapt.regions" ];
      [ "adapt"; "adapt.select" ];
      [ "adapt"; "adapt.select"; "slice" ];
      [ "adapt"; "adapt.codegen" ];
      [ "sim.inorder" ];
    ];
  let counter name =
    match List.assoc_opt name r.T.r_counters with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check bool) "profiled instrs" true (counter "profile.instrs" > 0);
  Alcotest.(check bool) "l1d traffic" true
    (counter "sim.l1d.hits" + counter "sim.l1d.misses" > 0);
  Alcotest.(check bool) "delinquent found" true
    (counter "delinquent.selected" > 0);
  Alcotest.(check bool) "slices attempted" true (counter "slice.attempts" > 0);
  Alcotest.(check bool) "spawned" true (counter "sim.spawns" > 0);
  Alcotest.(check bool) "slice sizes sane" true
    (match List.assoc_opt "slice.instrs" r.T.r_dists with
    | Some d -> d.T.ds_n > 0 && d.T.ds_max <= 48.0 && d.T.ds_min >= 0.0
    | None -> false);
  (* the adapt span dominates its children *)
  match T.find_span r.T.r_spans [ "adapt" ] with
  | None -> Alcotest.fail "adapt span"
  | Some sp ->
    let child_ms =
      List.fold_left (fun acc c -> acc +. c.T.ms) 0.0 sp.T.children
    in
    Alcotest.(check bool) "parent >= children" true (sp.T.ms >= child_ms *. 0.99)

(* Instrumentation must not change behavior: the adapted binary rendered
   with telemetry off is byte-identical to the one rendered with it on. *)
let test_off_identical () =
  T.reset ();
  T.set_enabled false;
  let cfg = Ssp_machine.Config.in_order in
  let adapt_asm () =
    let prog = small_prog () in
    let profile = Ssp_profiling.Collect.collect prog in
    let adapted = Ssp.Adapt.run ~config:cfg prog profile in
    Format.asprintf "%a@." Ssp_ir.Asm.print adapted.Ssp.Adapt.prog
  in
  let off = adapt_asm () in
  T.set_enabled true;
  let on = adapt_asm () in
  T.set_enabled false;
  T.reset ();
  Alcotest.(check string) "adapt output identical" off on;
  (* and a telemetry-off run records nothing *)
  let r = T.report () in
  Alcotest.(check (list (pair string int))) "no spans recorded" []
    (List.map (fun s -> (s.T.sp_name, s.T.calls)) r.T.r_spans);
  Alcotest.(check bool) "no counts recorded" true
    (List.for_all (fun (_, v) -> v = 0) r.T.r_counters)

let suite =
  [
    Alcotest.test_case "counter math" `Quick test_counter_math;
    Alcotest.test_case "distribution math" `Quick test_dist_math;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "series sorted by x" `Quick test_series_sorted;
    Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
    Alcotest.test_case "hist merge exact" `Quick test_hist_merge_exact;
    Alcotest.test_case "capture spans" `Quick test_capture_spans;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "pipeline report" `Slow test_pipeline_report;
    Alcotest.test_case "telemetry off is inert" `Slow test_off_identical;
  ]
