let () =
  Alcotest.run "ssp"
    [
      ("isa", Test_isa.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("sim", Test_sim.suite);
      ("minic", Test_minic.suite);
      ("profiling", Test_profiling.suite);
      ("ssp", Test_ssp.suite);
      ("workloads", Test_workloads.suite);
      ("sampling", Test_sampling.suite);
      ("telemetry", Test_telemetry.suite);
      ("attrib", Test_attrib.suite);
      ("parallel", Test_parallel.suite);
      ("fault", Test_fault.suite);
      ("store", Test_store.suite);
      ("feedback", Test_feedback.suite);
      ("server", Test_server.suite);
      ("cluster", Test_cluster.suite);
      ("integration", Test_integration.suite);
    ]
