(* Tests for the fault-injection engine (Ssp_fault): decision
   determinism, limits and counts, spec parsing; the per-load degradation
   ladder in Adapt.run (a load whose slicing fails is skipped with a
   diagnostic — sequentially and under --jobs 4 — rather than aborting
   adaptation); the simulator watchdog reclaiming a runaway chained
   slice; the chaos invariance harness; and sspc's exit-code contract
   for bad inputs. *)

open Ssp_isa
open Ssp_ir
module F = Ssp_fault.Fault
module T = Ssp_telemetry.Telemetry
module Config = Ssp_machine.Config

let cfg = Config.scale_caches Config.in_order 64

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- engine ---- *)

let test_no_plan_inert () =
  let s = F.site "test.inert" in
  Alcotest.(check bool) "no plan installed" false (F.active ());
  Alcotest.(check bool) "keyed query never fires" false (F.fire ~key:1 s);
  Alcotest.(check bool) "unkeyed query never fires" false (F.fire s)

(* Keyed decisions depend only on (seed, site, key): querying the same
   keys in reverse order under a fresh plan with the same seed must give
   the same per-key answers, and a different seed a different pattern. *)
let test_keyed_determinism () =
  let s = F.site "test.keyed" in
  let keys = List.init 200 Fun.id in
  let decisions seed keys =
    let plan = F.make ~seed [ ("test.keyed", F.spec 0.5) ] in
    F.with_plan plan (fun () -> List.map (fun k -> F.fire ~key:k s) keys)
  in
  let fwd = decisions 7 keys in
  let bwd = decisions 7 (List.rev keys) in
  Alcotest.(check (list bool)) "order-independent" fwd (List.rev bwd);
  Alcotest.(check bool) "some keys fire" true (List.mem true fwd);
  Alcotest.(check bool) "some keys don't" true (List.mem false fwd);
  Alcotest.(check bool) "seed changes the pattern" true (fwd <> decisions 8 keys)

let test_limit_and_counts () =
  let s = F.site "test.limit" in
  let plan = F.make ~seed:3 [ ("test.limit", F.spec ~limit:3 1.0) ] in
  let fired =
    F.with_plan plan (fun () ->
        List.init 10 (fun k -> F.fire ~key:k s)
        |> List.filter Fun.id |> List.length)
  in
  Alcotest.(check int) "limit caps fires" 3 fired;
  match F.counts plan with
  | [ c ] ->
    Alcotest.(check string) "count names the site" "test.limit" c.F.site;
    Alcotest.(check int) "queried" 10 c.F.queried;
    Alcotest.(check int) "fired" 3 c.F.fired;
    Alcotest.(check int) "fired_total" 3 (F.fired_total plan)
  | _ -> Alcotest.fail "expected exactly one count entry"

(* Every injection is also a telemetry event, [fault.<site>]. *)
let test_fire_telemetry_counter =
  Test_telemetry.scoped @@ fun () ->
  let s = F.site "test.counter" in
  let plan = F.make ~seed:1 [ ("test.counter", F.spec 1.0) ] in
  F.with_plan plan (fun () -> ignore (F.fire ~key:0 s));
  Alcotest.(check int)
    "fault.<site> counter" 1
    (List.assoc "fault.test.counter" (T.report ()).T.r_counters)

let test_parse_specs () =
  (match F.parse_specs "sim.spec.kill=0.5, adapt.codegen.refuse=1.0:2" with
  | Ok [ (a, sa); (b, sb) ] ->
    Alcotest.(check string) "first site" "sim.spec.kill" a;
    Alcotest.(check (float 1e-9)) "prob" 0.5 sa.F.prob;
    Alcotest.(check bool) "no limit" true (sa.F.limit = None);
    Alcotest.(check string) "second site" "adapt.codegen.refuse" b;
    Alcotest.(check bool) "limit parsed" true (sb.F.limit = Some 2)
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e);
  let bad s =
    match F.parse_specs s with
    | Ok _ -> Alcotest.fail ("accepted bad spec " ^ s)
    | Error _ -> ()
  in
  bad "nosite";
  bad "a=1.5";
  bad "a=x";
  bad "=0.5"

(* ---- the degradation ladder ---- *)

let adapt_under plan ~jobs =
  let w = Ssp_workloads.Suite.find "mcf" in
  let prog = Ssp_workloads.Workload.program w ~scale:1 in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let result =
    F.with_plan plan (fun () -> Ssp.Adapt.run ~jobs ~config:cfg prog profile)
  in
  (prog, result)

let skip_plan () = F.make ~seed:11 [ ("adapt.slice.oversized", F.spec 1.0) ]

(* The acceptance-criterion test: when slicing fails on every rung, each
   load is skipped with a diagnostic — adaptation completes, emits no
   slices, and leaves the binary untouched. *)
let test_ladder_skips_load () =
  let prog, result = adapt_under (skip_plan ()) ~jobs:1 in
  Alcotest.(check int)
    "no slices survive" 0
    (List.length result.Ssp.Adapt.choices);
  let diags = result.Ssp.Adapt.report.Ssp.Report.diagnostics in
  let skips =
    List.filter (fun (d : Ssp.Report.diag) -> d.Ssp.Report.action = "skip") diags
  in
  Alcotest.(check bool) "every failed load leaves a skip diagnostic" true
    (skips <> []);
  List.iter
    (fun (d : Ssp.Report.diag) ->
      Alcotest.(check string) "failing stage" "slicer" d.Ssp.Report.stage;
      Alcotest.(check bool) "diagnostic carries the error" true
        (contains d.Ssp.Report.detail "oversized"))
    skips;
  (* The ladder walked interprocedural -> intraprocedural -> basic before
     giving up, so each skip is preceded by two degrade events. *)
  Alcotest.(check int)
    "two degradations per skipped load"
    (2 * List.length skips)
    (List.length
       (List.filter
          (fun (d : Ssp.Report.diag) ->
            contains d.Ssp.Report.action "degrade")
          diags));
  Alcotest.(check string) "binary left untouched"
    (Format.asprintf "%a" Asm.print prog)
    (Format.asprintf "%a" Asm.print result.Ssp.Adapt.prog)

(* Ladder decisions are keyed by load identity, so a parallel adaptation
   must report byte-identical diagnostics and skip the same loads. *)
let test_ladder_skip_jobs4 () =
  let _, r1 = adapt_under (skip_plan ()) ~jobs:1 in
  let _, r4 = adapt_under (skip_plan ()) ~jobs:4 in
  Alcotest.(check int)
    "jobs=4 skips the loads too" 0
    (List.length r4.Ssp.Adapt.choices);
  Alcotest.(check bool) "jobs=4 still reports diagnostics" true
    (r4.Ssp.Adapt.report.Ssp.Report.diagnostics <> []);
  Alcotest.(check string) "identical report"
    (Format.asprintf "%a" Ssp.Report.pp r1.Ssp.Adapt.report)
    (Format.asprintf "%a" Ssp.Report.pp r4.Ssp.Adapt.report);
  Alcotest.(check string) "identical binary"
    (Format.asprintf "%a" Asm.print r1.Ssp.Adapt.prog)
    (Format.asprintf "%a" Asm.print r4.Ssp.Adapt.prog)

(* A chaining refusal must not kill the load: it degrades to the basic
   model and the slice still ships — with unchanged program semantics. *)
let test_ladder_degrades_to_basic () =
  let plan =
    F.make ~seed:5
      [
        ("adapt.chaining.refuse", F.spec 1.0);
        ("adapt.interproc.refuse", F.spec 1.0);
      ]
  in
  let prog, result = adapt_under plan ~jobs:1 in
  Alcotest.(check bool) "slices still emitted" true
    (result.Ssp.Adapt.choices <> []);
  List.iter
    (fun (c : Ssp.Select.choice) ->
      Alcotest.(check bool) "all surviving slices use the basic model" true
        (c.Ssp.Select.model = Ssp.Select.Basic))
    result.Ssp.Adapt.choices;
  Alcotest.(check bool) "degradations recorded" true
    (List.exists
       (fun (d : Ssp.Report.diag) -> contains d.Ssp.Report.action "degrade")
       result.Ssp.Adapt.report.Ssp.Report.diagnostics);
  Alcotest.(check (list int64)) "outputs preserved"
    (Ssp_sim.Funcsim.run prog).Ssp_sim.Funcsim.outputs
    (Ssp_sim.Funcsim.run ~spawning:true result.Ssp.Adapt.prog)
      .Ssp_sim.Funcsim.outputs

(* ---- watchdog reclaim of a runaway chained slice ---- *)

(* Hand-built runaway: "helper" loops forever and chain-spawns itself;
   main does real work for a while, so the watchdog has time to fire.
   The kills must be counted and main's outputs must be unaffected. *)
let runaway_program () =
  let open Op in
  let c = 40 and v = 41 and a = 42 in
  let main =
    Builder.func_of_blocks ~name:"main" ~nparams:0
      [
        ( "entry",
          [
            Movi (v, 1L);
            Print v;
            Movi (c, 2000L);
            Spawn ("helper", "hloop");
            Br "loop";
          ] );
        ("loop", [ Alui (Sub, c, c, 1L); Brnz (c, "loop"); Br "done" ]);
        ("done", [ Movi (v, 2L); Print v; Halt ]);
      ]
  in
  let helper =
    Builder.func_of_blocks ~name:"helper" ~nparams:0
      [
        ("entry", [ Movi (a, 1L); Br "hloop" ]);
        ( "hloop",
          [ Alui (Add, a, a, 1L); Spawn ("helper", "hloop"); Br "hloop" ] );
      ]
  in
  let p = Prog.create ~entry:"main" in
  Prog.add_func p main;
  Prog.add_func p helper;
  p

let test_watchdog_kills_runaway =
  Test_telemetry.scoped @@ fun () ->
  let p = runaway_program () in
  let wd_cfg = { cfg with Config.spec_watchdog = 50 } in
  let stats = Ssp_sim.Inorder.run wd_cfg p in
  Alcotest.(check (list int64))
    "main outputs unchanged" [ 1L; 2L ] stats.Ssp_sim.Stats.outputs;
  Alcotest.(check (list int64))
    "funcsim agrees" [ 1L; 2L ]
    (Ssp_sim.Funcsim.run p).Ssp_sim.Funcsim.outputs;
  Alcotest.(check bool) "watchdog kills counted" true
    (List.assoc "sim.watchdog_kills" (T.report ()).T.r_counters > 0)

(* ---- chaos harness smoke ---- *)

let test_chaos_smoke () =
  let r =
    Ssp_harness.Chaos.run ~seed:7 ~campaigns:2 ~scale:1
      [ Ssp_workloads.Suite.find "em3d" ]
  in
  Alcotest.(check int) "no safety violations" 0
    (Ssp_harness.Chaos.violations r);
  Alcotest.(check bool) "some fault sites fired" true
    (Ssp_harness.Chaos.fired_sites r <> []);
  Alcotest.(check bool) "json renders" true
    (contains (Ssp_harness.Chaos.to_json r) "\"violations\":0")

(* ---- sspc exit-code contract ---- *)

(* The test binary lives in _build/default/test/; sspc is its sibling
   under bin/ (declared as a dune dep of this test). *)
let sspc =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/sspc.exe"

let test_cli_exit_codes () =
  let code args = Sys.command (sspc ^ " " ^ args ^ " >/dev/null 2>&1") in
  Alcotest.(check int) "missing input file" 2
    (code "compile /nonexistent-sspc-input.mc");
  Alcotest.(check int) "bad fault spec" 2
    (code "chaos --faults sim.spec.kill=2.5");
  Alcotest.(check int) "unknown workload" 2 (code "chaos no-such-workload")

let suite =
  [
    Alcotest.test_case "engine: inert without a plan" `Quick test_no_plan_inert;
    Alcotest.test_case "engine: keyed decisions deterministic" `Quick
      test_keyed_determinism;
    Alcotest.test_case "engine: limit and counts" `Quick test_limit_and_counts;
    Alcotest.test_case "engine: telemetry counter per fire" `Quick
      test_fire_telemetry_counter;
    Alcotest.test_case "engine: parse_specs" `Quick test_parse_specs;
    Alcotest.test_case "ladder: failed slicing skips load with diagnostic"
      `Quick test_ladder_skips_load;
    Alcotest.test_case "ladder: identical under --jobs 4" `Quick
      test_ladder_skip_jobs4;
    Alcotest.test_case "ladder: chaining refusal degrades to basic" `Quick
      test_ladder_degrades_to_basic;
    Alcotest.test_case "watchdog: runaway chained slice reclaimed" `Quick
      test_watchdog_kills_runaway;
    Alcotest.test_case "chaos: em3d smoke campaign" `Slow test_chaos_smoke;
    Alcotest.test_case "sspc: exit code 2 on bad input" `Quick
      test_cli_exit_codes;
  ]
