(* Tests for prefetch-lifecycle attribution (Ssp_sim.Attrib), the
   saturation counters it feeds (dropped prefetches, denied spawns,
   watchdog kills), the Chrome trace-event exporter, and the guarantee
   that attribution is passive: attaching it changes neither cycle counts
   nor program outputs. *)

module T = Ssp_telemetry.Telemetry
module Attrib = Ssp_sim.Attrib
module Config = Ssp_machine.Config

let small_prog () = Ssp_workloads.(Workload.program (Suite.find "mcf") ~scale:1)
let base_cfg = Config.scale_caches Config.in_order 64

(* Fill buffer of one entry, two contexts, and a watchdog tight enough to
   reclaim threads right after their first prefetches: every refusal path
   (dropped fill, denied spawn, watchdog kill) must fire. *)
let saturated_cfg =
  {
    base_cfg with
    Config.fill_buffer_entries = 1;
    n_contexts = 2;
    spec_watchdog = 20;
  }

let adapt cfg =
  let prog = small_prog () in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  (prog, Ssp.Adapt.run ~config:cfg prog profile)

let attributed_sim cfg (result : Ssp.Adapt.result) =
  let attrib = Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map () in
  let stats = Ssp_sim.Inorder.run ~attrib cfg result.Ssp.Adapt.prog in
  (stats, Attrib.summary attrib)

let sum_loads f (s : Attrib.summary) =
  List.fold_left (fun acc l -> acc + f l) 0 s.Attrib.loads

(* ---- classification sanity on an unconstrained machine ---- *)

let test_useful_nonzero () =
  let _, result = adapt base_cfg in
  Alcotest.(check bool) "prefetch map nonempty" false
    (Ssp_ir.Iref.Map.is_empty result.Ssp.Adapt.prefetch_map);
  let _, s = attributed_sim base_cfg result in
  Alcotest.(check bool) "some prefetches issued" true
    (sum_loads (fun l -> l.Attrib.ls_issued) s > 0);
  Alcotest.(check bool) "some prefetches useful" true
    (sum_loads (fun l -> l.Attrib.ls_useful) s > 0);
  Alcotest.(check bool) "threads spawned" true (s.Attrib.threads.Attrib.th_spawns > 0);
  Alcotest.(check int) "all spawns end" s.Attrib.threads.Attrib.th_spawns
    s.Attrib.threads.Attrib.th_ended;
  (* every load's classes sum to its issues *)
  List.iter
    (fun (l : Attrib.load_summary) ->
      Alcotest.(check int)
        ("classes partition issues for " ^ Ssp_ir.Iref.to_string l.Attrib.ls_load)
        l.Attrib.ls_issued
        (l.Attrib.ls_useful + l.Attrib.ls_late + l.Attrib.ls_early_evicted
       + l.Attrib.ls_unused))
    s.Attrib.loads

(* ---- saturation: dropped / denied / watchdog counters fire ---- *)

let test_saturated_counters =
  Test_telemetry.scoped @@ fun () ->
  (* Adapt with telemetry off so only the simulation feeds the counters.
     treeadd.bf keeps many independent lfetches in flight, so a one-entry
     fill buffer is guaranteed to refuse some of them. *)
  T.set_enabled false;
  let prog =
    Ssp_workloads.(Workload.program (Suite.find "treeadd.bf") ~scale:1)
  in
  let profile = Ssp_profiling.Collect.collect ~config:saturated_cfg prog in
  let result = Ssp.Adapt.run ~config:saturated_cfg prog profile in
  T.set_enabled true;
  let _, s = attributed_sim saturated_cfg result in
  let counter name =
    match List.assoc_opt name (T.report ()).T.r_counters with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check bool) "fill buffer dropped prefetches" true
    (counter "sim.fill.dropped_prefetch" > 0);
  Alcotest.(check bool) "spawns denied" true (counter "sim.spawn_denied" > 0);
  Alcotest.(check bool) "watchdog kills" true
    (counter "sim.watchdog_kills" > 0);
  (* the same events reach the attribution summary *)
  let dropped = sum_loads (fun l -> l.Attrib.ls_dropped) s in
  Alcotest.(check bool) "dropped classified" true (dropped > 0);
  Alcotest.(check int) "pf.dropped counter matches summary" dropped
    (counter "sim.pf.dropped");
  Alcotest.(check int) "spawn_denied matches summary"
    s.Attrib.threads.Attrib.th_denied
    (counter "sim.spawn_denied");
  Alcotest.(check int) "watchdog matches summary"
    s.Attrib.threads.Attrib.th_watchdog_kills
    (counter "sim.watchdog_kills");
  Alcotest.(check bool) "per-site denials recorded" true
    (List.exists (fun (x : Attrib.site_summary) -> x.Attrib.ss_denied > 0)
       s.Attrib.sites)

(* ---- Chrome trace-event export ---- *)

let test_trace_roundtrip =
  Test_telemetry.scoped @@ fun () ->
  T.set_events true;
  let _, result = adapt base_cfg in
  ignore (attributed_sim base_cfg result);
  let j = Test_telemetry.parse_json (T.trace_events_json ()) in
  let events =
    match Test_telemetry.member "traceEvents" j with
    | Test_telemetry.Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  Alcotest.(check bool) "has events" true (List.length events > 2);
  let str m e =
    match Test_telemetry.member m e with
    | Test_telemetry.Str s -> s
    | _ -> Alcotest.fail ("field " ^ m ^ " not a string")
  in
  (* every event is well-formed: name, ph, pid, tid; X events have ts+dur *)
  List.iter
    (fun e ->
      let ph = str "ph" e in
      Alcotest.(check bool) "known phase" true
        (List.mem ph [ "X"; "i"; "M" ]);
      ignore (str "name" e);
      ignore (Test_telemetry.num (Test_telemetry.member "pid" e));
      ignore (Test_telemetry.num (Test_telemetry.member "tid" e));
      if ph = "X" then begin
        Alcotest.(check bool) "ts >= 0" true
          (Test_telemetry.num (Test_telemetry.member "ts" e) >= 0.);
        Alcotest.(check bool) "dur >= 0" true
          (Test_telemetry.num (Test_telemetry.member "dur" e) >= 0.)
      end)
    events;
  (* both processes are named and both appear in events *)
  let metas = List.filter (fun e -> str "ph" e = "M") events in
  Alcotest.(check int) "two process_name records" 2 (List.length metas);
  let pid_of e = int_of_float (Test_telemetry.num (Test_telemetry.member "pid" e)) in
  let pids = List.map pid_of metas in
  Alcotest.(check bool) "passes + sim pids" true
    (List.mem 0 pids && List.mem 1 pids);
  (* pass spans land on pid 0, speculative-thread timelines on pid 1 *)
  Alcotest.(check bool) "pass events" true
    (List.exists (fun e -> str "ph" e = "X" && pid_of e = 0) events);
  let spec =
    List.filter
      (fun e ->
        str "ph" e = "X" && pid_of e = 1
        && str "cat" e = "spec_thread")
      events
  in
  Alcotest.(check bool) "spec-thread timeline events" true (spec <> []);
  List.iter
    (fun e ->
      match Test_telemetry.member "args" e with
      | Test_telemetry.Obj fields ->
        Alcotest.(check bool) "target arg" true (List.mem_assoc "target" fields)
      | _ -> Alcotest.fail "spec event args")
    spec

(* ---- attribution and event recording are passive ---- *)

let test_attrib_inert () =
  T.reset ();
  T.set_enabled false;
  let prog, result = adapt base_cfg in
  let plain_base = Ssp_sim.Inorder.run base_cfg prog in
  let plain = Ssp_sim.Inorder.run base_cfg result.Ssp.Adapt.prog in
  (* attribution + telemetry + events all on *)
  T.set_enabled true;
  T.set_events true;
  let instrumented, s = attributed_sim base_cfg result in
  let instrumented_base = Ssp_sim.Inorder.run base_cfg prog in
  T.set_events false;
  T.set_enabled false;
  T.reset ();
  Alcotest.(check int) "adapted cycles unchanged"
    plain.Ssp_sim.Stats.cycles instrumented.Ssp_sim.Stats.cycles;
  Alcotest.(check int) "baseline cycles unchanged"
    plain_base.Ssp_sim.Stats.cycles instrumented_base.Ssp_sim.Stats.cycles;
  Alcotest.(check bool) "outputs unchanged" true
    (plain.Ssp_sim.Stats.outputs = instrumented.Ssp_sim.Stats.outputs);
  Alcotest.(check bool) "outputs match baseline" true
    (plain_base.Ssp_sim.Stats.outputs = plain.Ssp_sim.Stats.outputs);
  Alcotest.(check bool) "attribution recorded meanwhile" true
    (sum_loads (fun l -> l.Attrib.ls_issued) s > 0)

let suite =
  [
    Alcotest.test_case "classification on mcf" `Slow test_useful_nonzero;
    Alcotest.test_case "saturation counters" `Slow test_saturated_counters;
    Alcotest.test_case "trace-event roundtrip" `Slow test_trace_roundtrip;
    Alcotest.test_case "attribution is inert" `Slow test_attrib_inert;
  ]
