(* Sampled-simulation accuracy contract and the generated workload corpus.

   The sampled mode's contract has two halves:

   - outputs are BYTE-IDENTICAL to the full-detail run (fast-forward is
     architecturally exact — it executes every instruction, it only skips
     the timing model), which also pins the decoded fast-forward
     interpreter against the boxed [Exec.step_op] semantics, and
   - the extrapolated timing is close: IPC within 3% and the L1d miss
     rate within 3 points of the full run, on every suite workload and
     both cycle cores.

   The accuracy runs use scale 4 — the smallest working set where the
   detail/fast-forward alternation has enough windows to be in the regime
   sampling is specified for (at scale 3 the shortest workloads run only
   a handful of windows and the extrapolation error is dominated by the
   end effects). The simulators are deterministic, so these checks are
   exact regressions, not statistical ones. *)

let setting = { Ssp_harness.Experiment.quick with scale = 4; label = "sampling" }
let ipc_eps = 0.03
let l1d_eps = 0.03

let check_accuracy pipeline () =
  List.iter
    (fun w ->
      let r =
        Ssp_harness.Experiment.sampling_accuracy ~setting ~pipeline w
      in
      let name = r.Ssp_harness.Experiment.sc_name in
      Alcotest.(check bool)
        (name ^ ": outputs byte-identical")
        true r.Ssp_harness.Experiment.sc_outputs_equal;
      let ipc_err = Float.abs r.Ssp_harness.Experiment.sc_ipc_err in
      if ipc_err > ipc_eps then
        Alcotest.failf "%s: sampled IPC error %.2f%% exceeds %.0f%%" name
          (100. *. ipc_err) (100. *. ipc_eps);
      let l1d_err = Float.abs r.Ssp_harness.Experiment.sc_l1d_err in
      if l1d_err > l1d_eps then
        Alcotest.failf "%s: sampled L1d miss-rate error %.2f exceeds %.2f"
          name l1d_err l1d_eps)
    Ssp_workloads.Suite.all

(* Sampled runs of an ADAPTED binary must also keep outputs identical:
   the fast-forward interpreter executes the injected speculative-thread
   machinery (spawn/kill/chk take the slow path) without letting it
   commit state. *)
let sampled_adapted () =
  let open Ssp_harness.Experiment in
  let cfg = config_for setting Ssp_machine.Config.In_order in
  let w = Ssp_workloads.Suite.find "mst" in
  let prog = Ssp_workloads.Workload.program w ~scale:setting.scale in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let r = Ssp.Adapt.run ~config:cfg prog profile in
  let full = Ssp_sim.Inorder.run cfg r.Ssp.Adapt.prog in
  let samp =
    Ssp_sim.Inorder.run ~sampling:Ssp_sim.Smt.default_sampling cfg
      r.Ssp.Adapt.prog
  in
  Alcotest.(check (list int64))
    "adapted outputs identical" full.Ssp_sim.Stats.outputs
    samp.Ssp_sim.Stats.outputs

(* The seed -> source mapping is a cross-process contract (splitmix64,
   no [Random], no [Hashtbl.hash]): corpus runs are replayable from the
   seed alone. The digest below was recorded once and must never drift —
   a change means previously reported corpus results are unreproducible. *)
let corpus_digest () =
  let b = Buffer.create 65536 in
  List.iter
    (fun (w : Ssp_workloads.Workload.t) ->
      Buffer.add_string b w.Ssp_workloads.Workload.name;
      Buffer.add_string b (w.Ssp_workloads.Workload.source 1);
      Buffer.add_string b (w.Ssp_workloads.Workload.source 3))
    (Ssp_workloads.Suite.corpus ~n:25 ~seed:1);
  Alcotest.(check string)
    "seeds 1..25, scales {1,3}" "3efa2396331990349bdec64e3ee12d8e"
    (Digest.to_hex (Digest.string (Buffer.contents b)))

let corpus_registry () =
  let w = Ssp_workloads.Suite.find "gen:42" in
  Alcotest.(check string) "resolved by name" "gen:42"
    w.Ssp_workloads.Workload.name;
  let ws = Ssp_workloads.Suite.corpus ~n:5 ~seed:7 in
  Alcotest.(check (list string))
    "consecutive seeds"
    [ "gen:7"; "gen:8"; "gen:9"; "gen:10"; "gen:11" ]
    (List.map (fun (w : Ssp_workloads.Workload.t) -> w.name) ws);
  Alcotest.check_raises "unknown name still raises" Not_found (fun () ->
      ignore (Ssp_workloads.Suite.find "gen:notanumber"))

(* Every corpus member must survive the full differential: compile,
   profile, adapt, and keep outputs identical to the unadapted binary
   across all three execution engines. A small chaos campaign over a few
   members is the test-sized version of the CI corpus smoke. *)
let corpus_differential () =
  let report =
    Ssp_harness.Chaos.run ~scale:2 ~seed:11 ~campaigns:1
      (Ssp_workloads.Suite.corpus ~n:4 ~seed:11)
  in
  Alcotest.(check int)
    "no output divergence" 0
    (Ssp_harness.Chaos.violations report)

(* Cycle-core outputs arrive through the growable buffer in program
   order, full-detail and sampled alike. *)
let outputs_order () =
  let src =
    "int main() { int i; for (i = 0; i < 40; i = i + 1) print_int(i * 7); \
     return 0; }"
  in
  let prog = Ssp_minic.Frontend.compile src in
  let expect = List.init 40 (fun i -> Int64.of_int (i * 7)) in
  let cfg = Ssp_machine.Config.in_order in
  let full = Ssp_sim.Inorder.run cfg prog in
  Alcotest.(check (list int64))
    "inorder program order" expect full.Ssp_sim.Stats.outputs;
  let samp =
    Ssp_sim.Inorder.run
      ~sampling:{ Ssp_sim.Smt.detail_window = 50; ff_window = 100 }
      cfg prog
  in
  Alcotest.(check (list int64))
    "sampled program order" expect samp.Ssp_sim.Stats.outputs;
  let ooo = Ssp_sim.Ooo.run Ssp_machine.Config.out_of_order prog in
  Alcotest.(check (list int64))
    "ooo program order" expect ooo.Ssp_sim.Stats.outputs

let suite =
  [
    Alcotest.test_case "sampled accuracy (inorder)" `Slow
      (check_accuracy Ssp_machine.Config.In_order);
    Alcotest.test_case "sampled accuracy (ooo)" `Slow
      (check_accuracy Ssp_machine.Config.Out_of_order);
    Alcotest.test_case "sampled adapted outputs" `Quick sampled_adapted;
    Alcotest.test_case "corpus digest is stable" `Quick corpus_digest;
    Alcotest.test_case "corpus registry" `Quick corpus_registry;
    Alcotest.test_case "corpus differential" `Slow corpus_differential;
    Alcotest.test_case "outputs in program order" `Quick outputs_order;
  ]
