open Ssp_isa
open Ssp_ir
open Ssp_sim

let test_memory_rw () =
  let m = Memory.create () in
  Memory.write m 0x1000L 8 0x1122334455667788L;
  Alcotest.(check int64) "rw8" 0x1122334455667788L (Memory.read m 0x1000L 8);
  Alcotest.(check int64) "rw1" 0x88L (Memory.read m 0x1000L 1);
  Alcotest.(check int64) "rw2" 0x7788L (Memory.read m 0x1000L 2);
  Alcotest.(check int64) "rw4" 0x55667788L (Memory.read m 0x1000L 4);
  Alcotest.(check int64) "zero init" 0L (Memory.read m 0x9999L 8);
  (* Page-crossing access. *)
  let edge = Int64.of_int ((1 lsl 16) - 4) in
  Memory.write m edge 8 0xdeadbeefcafebabeL;
  Alcotest.(check int64) "page crossing" 0xdeadbeefcafebabeL (Memory.read m edge 8)

let test_memory_alloc () =
  let m = Memory.create () in
  let a = Memory.alloc m 10L in
  let b = Memory.alloc m 8L in
  Alcotest.(check int64) "first at heap base" Prog.heap_base a;
  Alcotest.(check int64) "aligned bump" (Int64.add a 16L) b;
  Alcotest.(check int64) "heap used" 24L (Memory.heap_used m)

let geom size ways latency =
  { Ssp_machine.Config.size_bytes = size; ways; line_bytes = 64; latency }

let test_cache_lru () =
  (* Direct-mapped-ish: 2 sets x 2 ways of 64B lines = 256B. *)
  let c = Cache.create (geom 256 2 1) in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0L);
  Alcotest.(check bool) "still missing" false (Cache.probe c 0L);
  Cache.install c 0L;
  Alcotest.(check bool) "hit after install" true (Cache.access c 0L);
  (* Lines mapping to set 0: addresses 0, 128, 256... fill both ways then
     evict LRU (line 0 was touched most recently after installs). *)
  Cache.install c 256L;
  Cache.install c 0L;
  (* set 0 now holds {0, 256}; 512 evicts LRU = 256. *)
  Cache.install c 512L;
  Alcotest.(check bool) "0 survives" true (Cache.probe c 0L);
  Alcotest.(check bool) "256 evicted" false (Cache.probe c 256L)

let test_hierarchy_levels () =
  let cfg = Ssp_machine.Config.in_order in
  let h = Hierarchy.create cfg in
  let o1 = Hierarchy.access h ~now:0 0x10000L in
  Alcotest.(check bool) "cold access goes to memory" true
    (o1.Hierarchy.level = Hierarchy.Mem);
  Alcotest.(check int) "memory latency" 230 o1.Hierarchy.ready;
  (* Same line while in flight: partial hit. *)
  let o2 = Hierarchy.access h ~now:10 0x10008L in
  Alcotest.(check bool) "partial" true o2.Hierarchy.partial;
  Alcotest.(check int) "ready when fill lands" 230 o2.Hierarchy.ready;
  (* After the fill completes the line hits L1. *)
  let o3 = Hierarchy.access h ~now:300 0x10010L in
  Alcotest.(check bool) "L1 hit after fill" true (o3.Hierarchy.level = Hierarchy.L1);
  Alcotest.(check int) "L1 latency" 302 o3.Hierarchy.ready

let test_hierarchy_perfect () =
  let cfg =
    Ssp_machine.Config.with_memory_mode Ssp_machine.Config.in_order
      Ssp_machine.Config.Perfect_memory
  in
  let h = Hierarchy.create cfg in
  let o = Hierarchy.access h ~now:5 0xdead00L in
  Alcotest.(check bool) "always L1" true (o.Hierarchy.level = Hierarchy.L1);
  Alcotest.(check int) "L1 latency" 7 o.Hierarchy.ready

let test_fill_buffer_pressure () =
  let cfg = Ssp_machine.Config.in_order in
  let h = Hierarchy.create cfg in
  (* Launch 16 distinct line misses at cycle 0, then a 17th: it must wait
     for the earliest entry to retire before starting its own fill. *)
  for i = 0 to 15 do
    ignore (Hierarchy.access h ~now:0 (Int64.of_int (0x100000 + (i * 4096))))
  done;
  let o = Hierarchy.access h ~now:1 0x900000L in
  Alcotest.(check bool) "delayed past a retirement" true
    (o.Hierarchy.ready >= 230 + 230)

let test_bpred_learns () =
  let cfg = Ssp_machine.Config.in_order in
  let b = Bpred.create cfg in
  (* Train an always-taken branch. *)
  for _ = 1 to 8 do
    Bpred.update b ~thread:0 ~pc:42 ~taken:true
  done;
  Alcotest.(check bool) "predicts taken" true (Bpred.predict b ~thread:0 ~pc:42);
  Alcotest.(check bool) "btb miss then hit" false (Bpred.btb_lookup b ~pc:42);
  Bpred.btb_insert b ~pc:42;
  Alcotest.(check bool) "btb hit" true (Bpred.btb_lookup b ~pc:42)

let test_funcsim_fact () =
  let p = Test_ir.fact_program 10 in
  let r = Funcsim.run p in
  Alcotest.(check (list int64)) "10! printed" [ 3628800L ] r.Funcsim.outputs

let test_funcsim_memory_program () =
  (* Store then load through a pointer chain: a[0]=&b; b[0]=99; print **a. *)
  let open Op in
  let v = 40 and a = 41 and b = 42 in
  let f =
    Builder.func_of_blocks ~name:"main" ~nparams:0
      [
        ( "entry",
          [
            Movi (v, 64L);
            Alloc (a, v);
            Alloc (b, v);
            Store (W8, b, a, 0);
            Movi (v, 99L);
            Store (W8, v, b, 0);
            Load (W8, v, a, 0);
            Load (W8, v, v, 0);
            Print v;
            Halt;
          ] );
      ]
  in
  let p = Prog.create ~entry:"main" in
  Prog.add_func p f;
  let r = Funcsim.run p in
  Alcotest.(check (list int64)) "pointer chain" [ 99L ] r.Funcsim.outputs

let test_funcsim_hook_counts () =
  let p = Test_ir.fact_program 5 in
  let n = ref 0 in
  let r = Funcsim.run ~hook:(fun _ _ _ _ _ -> incr n) p in
  Alcotest.(check int) "hook saw every instruction" r.Funcsim.instrs !n

let suite =
  [
    Alcotest.test_case "memory read/write" `Quick test_memory_rw;
    Alcotest.test_case "memory alloc" `Quick test_memory_alloc;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "hierarchy levels & partial hits" `Quick
      test_hierarchy_levels;
    Alcotest.test_case "hierarchy perfect mode" `Quick test_hierarchy_perfect;
    Alcotest.test_case "fill buffer pressure" `Quick test_fill_buffer_pressure;
    Alcotest.test_case "branch predictor learns" `Quick test_bpred_learns;
    Alcotest.test_case "funcsim factorial" `Quick test_funcsim_fact;
    Alcotest.test_case "funcsim pointer chain" `Quick test_funcsim_memory_program;
    Alcotest.test_case "funcsim hook" `Quick test_funcsim_hook_counts;
  ]

(* ---------- property tests ---------- *)

(* Memory vs a byte-map reference model. *)
let prop_memory =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 60)
        (triple (0 -- 2000) (oneofl [ 1; 2; 4; 8 ])
           (map Int64.of_int (0 -- 1_000_000))))
  in
  QCheck.Test.make ~name:"memory matches byte-map reference" ~count:100
    (QCheck.make gen) (fun ops ->
      let m = Memory.create () in
      let ref_bytes = Hashtbl.create 64 in
      let base = 0x30000 in
      List.iter
        (fun (off, w, v) ->
          Memory.write m (Int64.of_int (base + off)) w v;
          for i = 0 to w - 1 do
            Hashtbl.replace ref_bytes (base + off + i)
              (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
          done)
        ops;
      List.for_all
        (fun (off, w, _) ->
          let got = Memory.read m (Int64.of_int (base + off)) w in
          let expect =
            let rec go i acc =
              if i < 0 then acc
              else
                let b =
                  Option.value ~default:0
                    (Hashtbl.find_opt ref_bytes (base + off + i))
                in
                go (i - 1) Int64.(logor (shift_left acc 8) (of_int b))
            in
            go (w - 1) 0L
          in
          Int64.equal got expect)
        ops)

(* Set-associative LRU cache vs a naive reference model. *)
let prop_cache_lru =
  let gen = QCheck.Gen.(list_size (1 -- 200) (0 -- 24)) in
  QCheck.Test.make ~name:"cache matches naive LRU reference" ~count:100
    (QCheck.make gen) (fun lines ->
      let geom =
        { Ssp_machine.Config.size_bytes = 512; ways = 2; line_bytes = 64;
          latency = 1 }
      in
      (* 512B / 64B / 2 ways = 4 sets *)
      let c = Cache.create geom in
      let sets = 4 in
      let reference = Array.make sets [] in
      List.for_all
        (fun line ->
          let addr = Int64.of_int (line * 64) in
          let s = line mod sets in
          let hit_ref = List.mem line reference.(s) in
          let hit = Cache.access c addr in
          if not hit then Cache.install c addr;
          (* update reference LRU: move/insert to front, keep 2 *)
          reference.(s) <-
            line :: List.filter (fun l -> l <> line) reference.(s);
          (if List.length reference.(s) > 2 then
             reference.(s) <- [ List.nth reference.(s) 0; List.nth reference.(s) 1 ]);
          hit = hit_ref)
        lines)

let extra_suite =
  [ QCheck_alcotest.to_alcotest prop_memory;
    QCheck_alcotest.to_alcotest prop_cache_lru ]

let suite = suite @ extra_suite
