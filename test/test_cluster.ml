(* The cluster layer: consistent-hash ring properties (balance, minimal
   movement, determinism), TCP transport byte-identity, router failover
   under a mid-campaign shard kill, and the client's retry/backoff
   behavior against a saturated or flaky endpoint. *)

module Ring = Ssp_cluster.Ring
module Router = Ssp_cluster.Router
module Server = Ssp_server.Server
module Client = Ssp_server.Client
module Proto = Ssp_server.Proto
module Store = Ssp_store.Store
module Suite = Ssp_workloads.Suite
module Workload = Ssp_workloads.Workload

let scale = Suite.test_scale

(* ---- ring ---- *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let placements ring ks =
  List.map
    (fun k ->
      match Ring.lookup ring k with
      | Some node -> (k, node)
      | None -> Alcotest.fail "lookup on a non-empty ring returned None")
    ks

let test_ring_balance () =
  (* 10k keys over 8 shards with 128 vnodes: the χ² statistic over the
     8 bucket counts must stay small (7 degrees of freedom; χ² < 500
     would already mean a 40% hot shard — we assert well under that and
     bound the worst shard directly). *)
  let shards = List.init 8 (fun i -> Printf.sprintf "shard-%d" i) in
  let ring = Ring.create shards in
  let n = 10_000 in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, node) ->
      Hashtbl.replace counts node
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts node)))
    (placements ring (keys n));
  Alcotest.(check int) "every shard owns keys" 8 (Hashtbl.length counts);
  let expected = float_of_int n /. 8. in
  let chi2 =
    Hashtbl.fold
      (fun _ c acc ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      counts 0.
  in
  let worst = Hashtbl.fold (fun _ c m -> max c m) counts 0 in
  Alcotest.(check bool)
    (Printf.sprintf "chi^2 %.1f < 200" chi2)
    true (chi2 < 200.);
  Alcotest.(check bool)
    (Printf.sprintf "max/mean %.2f < 1.5" (float_of_int worst /. expected))
    true
    (float_of_int worst < 1.5 *. expected)

let test_ring_minimal_movement_on_join () =
  let before = Ring.create (List.init 4 (fun i -> Printf.sprintf "s%d" i)) in
  let after = Ring.add before "s4" in
  let ks = keys 10_000 in
  let pb = placements before ks and pa = placements after ks in
  let moved =
    List.fold_left2
      (fun acc (_, nb) (k, na) ->
        if String.equal nb na then acc
        else begin
          (* Any key that moved may only have moved TO the joining
             shard; shuffling between survivors would defeat the cache
             affinity the ring exists for. *)
          Alcotest.(check string)
            (Printf.sprintf "moved key %s lands on the new shard" k)
            "s4" na;
          acc + 1
        end)
      0 pb pa
  in
  (* The new shard owns ~1/5 of the circle. *)
  Alcotest.(check bool)
    (Printf.sprintf "moved fraction %.3f in (0.05, 0.4)"
       (float_of_int moved /. 10_000.))
    true
    (moved > 500 && moved < 4_000)

let test_ring_minimal_movement_on_leave () =
  let before = Ring.create (List.init 4 (fun i -> Printf.sprintf "s%d" i)) in
  let after = Ring.remove before "s2" in
  let ks = keys 10_000 in
  List.iter2
    (fun (_, nb) (k, na) ->
      if String.equal nb "s2" then
        Alcotest.(check bool)
          (Printf.sprintf "orphaned key %s rehomed off s2" k)
          true
          (not (String.equal na "s2"))
      else
        Alcotest.(check string)
          (Printf.sprintf "unaffected key %s stays put" k)
          nb na)
    (placements before ks) (placements after ks)

let test_ring_deterministic_across_processes () =
  (* Placement must be a pure function of (membership, vnodes) — no
     per-process seeding — or routers would disagree. These expected
     placements were computed once and hardcoded; a change here is a
     placement-breaking change (it silently cools every cluster cache
     on upgrade). *)
  let ring = Ring.create [ "alpha"; "beta"; "gamma" ] in
  let got =
    List.map (fun k -> Option.get (Ring.lookup ring k))
      [ "key-0"; "key-1"; "key-2"; "key-3"; "key-4" ]
  in
  let ring' = Ring.create [ "gamma"; "alpha"; "beta"; "alpha" ] in
  List.iter2
    (fun k g ->
      Alcotest.(check string)
        (k ^ " placement order/dup independent")
        g
        (Option.get (Ring.lookup ring' k)))
    [ "key-0"; "key-1"; "key-2"; "key-3"; "key-4" ]
    got;
  (* Fresh ring, same inputs, same answers (pure function). *)
  List.iter2
    (fun k g ->
      Alcotest.(check string) (k ^ " stable across builds") g
        (Option.get
           (Ring.lookup (Ring.create [ "alpha"; "beta"; "gamma" ]) k)))
    [ "key-0"; "key-1"; "key-2"; "key-3"; "key-4" ]
    got

let test_ring_successors () =
  let ring = Ring.create [ "a"; "b"; "c" ] in
  let succ = Ring.successors ring "some-key" in
  Alcotest.(check int) "failover covers all nodes" 3 (List.length succ);
  Alcotest.(check (list string))
    "distinct nodes" (List.sort_uniq compare succ)
    (List.sort compare succ);
  Alcotest.(check (option string))
    "head is the owner" (Ring.lookup ring "some-key")
    (Some (List.hd succ))

(* ---- in-process shards and routers ---- *)

let temp_dir = Filename.temp_dir "sspc_cluster_test" ""

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Filename.concat temp_dir (Printf.sprintf "%s%d" prefix !n)

let shard_config ?(max_queue = 256) ~cache_dir () =
  {
    Server.socket = None;
    tcp = Some ("127.0.0.1", 0);
    jobs = 1;
    cache = Some (Store.Cache.open_dir cache_dir);
    max_frame = Proto.default_max_frame;
    timeout_s = 60.;
    max_batch = 8;
    max_queue;
    retry_after_s = 0.05;
    tune = false;
  }

let start_shard ?max_queue () =
  let port = ref None in
  let cfg = shard_config ?max_queue ~cache_dir:(fresh "cache") () in
  let th =
    Thread.create
      (fun () -> Server.serve ~ready:(fun ~tcp_port -> port := tcp_port) cfg)
      ()
  in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "shard never came up";
    match !port with
    | Some p -> p
    | None ->
      Thread.delay 0.01;
      wait (tries - 1)
  in
  (th, wait 500)

let start_router shards =
  let socket = fresh "router" ^ ".sock" in
  let cfg =
    {
      (Router.default_config ~shards) with
      Router.socket = Some socket;
      quarantine_s = 0.5;
      shard_timeout_s = 30.;
    }
  in
  let up = ref false in
  let th =
    Thread.create
      (fun () -> Router.serve ~ready:(fun ~tcp_port:_ -> up := true) cfg)
      ()
  in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "router never came up"
    else if not !up then begin
      Thread.delay 0.01;
      wait (tries - 1)
    end
  in
  wait 500;
  (th, socket)

let adapt_req name =
  Proto.Adapt
    { prog = Proto.Workload name; scale; pipeline = "inorder";
      tenant = Proto.default_tenant }

let shutdown addr =
  match Client.request_addr addr Proto.Shutdown with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged"

let offline_adapt name =
  let config = Ssp_machine.Config.in_order in
  let prog = Workload.program (Suite.find name) ~scale in
  let profile = Ssp_profiling.Collect.collect prog in
  let result = Ssp.Adapt.run ~config prog profile in
  ( Format.asprintf "%a@." Ssp.Report.pp result.Ssp.Adapt.report,
    Format.asprintf "%a@." Ssp_ir.Asm.print result.Ssp.Adapt.prog )

let expect_adapted = function
  | Proto.Adapted { report; asm; cache } -> (report, asm, cache)
  | Proto.Error_reply { pass; what; _ } ->
    Alcotest.fail (Printf.sprintf "server error [%s]: %s" pass what)
  | _ -> Alcotest.fail "expected an Adapted reply"

let test_tcp_transport_identical () =
  (* The TCP listener must speak the exact same protocol as the Unix
     socket: a served adapt over TCP is byte-identical to offline. *)
  let th, port = start_shard () in
  let addr = Client.Tcp ("127.0.0.1", port) in
  let exp_report, exp_asm = offline_adapt "em3d" in
  let r, a, c = expect_adapted (Client.request_addr addr (adapt_req "em3d")) in
  Alcotest.(check string) "cold miss over TCP" "miss" c;
  Alcotest.(check bool) "report identical over TCP" true
    (String.equal exp_report r);
  Alcotest.(check bool) "asm identical over TCP" true (String.equal exp_asm a);
  let _, a2, c2 =
    expect_adapted (Client.request_addr addr (adapt_req "em3d"))
  in
  Alcotest.(check string) "warm hit over TCP" "hit" c2;
  Alcotest.(check bool) "warm asm identical" true (String.equal a a2);
  shutdown addr;
  Thread.join th

let test_router_routes_and_caches () =
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  let exp_report, exp_asm = offline_adapt "em3d" in
  let r, a, c = expect_adapted (Client.request_addr router (adapt_req "em3d")) in
  Alcotest.(check string) "cold miss via router" "miss" c;
  Alcotest.(check bool) "routed report identical" true
    (String.equal exp_report r);
  Alcotest.(check bool) "routed asm identical" true (String.equal exp_asm a);
  (* The ring sends the repeat to the same shard: warm hit. *)
  let _, _, c2 =
    expect_adapted (Client.request_addr router (adapt_req "em3d"))
  in
  Alcotest.(check string) "affinity makes the repeat hit" "hit" c2;
  (* Stats is answered by the router itself. *)
  (match Client.request_addr router Proto.Stats with
  | Proto.Stats_reply _ -> ()
  | _ -> Alcotest.fail "expected the router's own stats");
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", p1));
  shutdown (Client.Tcp ("127.0.0.1", p2));
  Thread.join th1;
  Thread.join th2

let test_router_failover_mid_campaign () =
  (* The acceptance scenario: warm a set of keys through a 2-shard
     router, kill one shard mid-campaign, and require every subsequent
     reply to remain byte-identical — degraded service, never wrong
     bytes. *)
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  let names = [ "em3d"; "mst" ] in
  let expected = List.map (fun n -> (n, offline_adapt n)) names in
  let check_all tag =
    List.iter
      (fun (n, (er, ea)) ->
        let r, a, _ =
          expect_adapted
            (Client.request_retry ~attempts:6 router (adapt_req n))
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s report identical" tag n)
          true (String.equal er r);
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s asm identical" tag n)
          true (String.equal ea a))
      expected
  in
  check_all "both shards live";
  (* Kill shard 1 (no clean shutdown needed — a vanished peer is the
     point), then keep the campaign going. *)
  shutdown (Client.Tcp ("127.0.0.1", p1));
  Thread.join th1;
  check_all "one shard down";
  check_all "one shard down, repeat";
  (* Kill the last shard: the router must answer with a structured
     degraded error naming the attempts, not hang or lie. *)
  shutdown (Client.Tcp ("127.0.0.1", p2));
  Thread.join th2;
  (match Client.request_addr router (adapt_req "em3d") with
  | Proto.Error_reply { pass; what; _ } ->
    Alcotest.(check string) "degraded error is the router's" "router" pass;
    Alcotest.(check bool) "names the degradation" true
      (String.length what > 0
      && String.starts_with ~prefix:"degraded" what)
  | _ -> Alcotest.fail "expected a degraded-mode error");
  shutdown router;
  Thread.join r_th

let test_router_forwards_busy () =
  (* A saturated shard's Busy_reply must come back to the client (with
     the retry-after hint), not trigger failover to a shard that does
     not own the key. *)
  let th, port = start_shard ~max_queue:0 () in
  let r_th, r_sock = start_router [ ("127.0.0.1", port) ] in
  let router = Client.Unix_sock r_sock in
  (match Client.request_addr router (adapt_req "em3d") with
  | Proto.Busy_reply { retry_after_s } ->
    Alcotest.(check bool) "retry-after hint positive" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "expected the shard's Busy_reply through the router");
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", port));
  Thread.join th

(* ---- the trace and stats planes across the router ---- *)

module T = Ssp_telemetry.Telemetry
module Snapshot = Ssp_server.Snapshot

let with_telemetry f () =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

let test_traced_through_router =
  with_telemetry @@ fun () ->
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  let ctx = { Proto.trace_id = "0ddba11"; span_id = 1 } in
  let t0 = Unix.gettimeofday () in
  let resp, hops = Client.request_hops ~trace:ctx router (adapt_req "em3d") in
  let total_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  ignore (expect_adapted resp);
  (* One trace crosses both processes: the router stamps its forward
     window, the shard its queue/lookup/compute/serialize breakdown. *)
  let forward =
    List.filter
      (fun h ->
        String.equal h.Proto.hop_node "router"
        && String.equal h.Proto.hop_stage "forward")
      hops
  in
  Alcotest.(check int) "router stamped one forward hop" 1 (List.length forward);
  let fwd_ms = (List.hd forward).Proto.hop_ms in
  let shard_sum =
    List.fold_left
      (fun acc h ->
        if
          (not (String.equal h.Proto.hop_node "router"))
          && List.mem h.Proto.hop_stage [ "queue"; "compute"; "serialize" ]
        then acc +. h.Proto.hop_ms
        else acc)
      0. hops
  in
  Alcotest.(check bool) "shard did measurable work" true (shard_sum > 0.);
  (* The windows nest: shard breakdown <= router forward <= client
     total, each within scheduling slop. *)
  let slop = 50. in
  Alcotest.(check bool)
    (Printf.sprintf "shard %.1fms <= forward %.1fms (+slop)" shard_sum fwd_ms)
    true
    (shard_sum <= fwd_ms +. slop);
  Alcotest.(check bool)
    (Printf.sprintf "forward %.1fms <= total %.1fms (+slop)" fwd_ms total_ms)
    true
    (fwd_ms <= total_ms +. slop);
  (* Both hops of the path counted the same trace id (everything is
     in-process here, so one report sees both). *)
  Alcotest.(check int) "trace id counted at router and shard" 2
    (List.assoc "trace.0ddba11" (T.report ()).T.r_counters);
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", p1));
  shutdown (Client.Tcp ("127.0.0.1", p2));
  Thread.join th1;
  Thread.join th2

let test_cluster_snapshot_merge =
  with_telemetry @@ fun () ->
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  List.iter
    (fun n -> ignore (expect_adapted (Client.request_addr router (adapt_req n))))
    [ "em3d"; "mst" ];
  let snap =
    match Client.request_addr router Proto.Stats_snapshot with
    | Proto.Snapshot_reply { snapshot } -> Snapshot.decode snapshot
    | _ -> Alcotest.fail "expected the router's merged snapshot"
  in
  Alcotest.(check string) "merged under the cluster node" "cluster"
    snap.Snapshot.node;
  (* Both shards report live, exactly once each (no double prefixes). *)
  List.iter
    (fun p ->
      let key = Printf.sprintf "shard.127.0.0.1:%d.up" p in
      match List.assoc_opt key snap.Snapshot.gauges with
      | Some v -> Alcotest.(check (float 0.)) (key ^ " = 1") 1.0 v
      | None -> Alcotest.fail ("missing liveness gauge " ^ key))
    [ p1; p2 ];
  Alcotest.(check bool) "no double-prefixed gauges" true
    (List.for_all
       (fun (name, _) ->
         not
           (String.length name >= 12
           && String.equal (String.sub name 0 12) "shard.router"))
       snap.Snapshot.gauges);
  (* The merged histograms cover the served requests; the router's
     forward times ride in the same snapshot. *)
  (match List.assoc_opt "server.service_ms" snap.Snapshot.hists with
  | Some h -> Alcotest.(check bool) "service hist populated" true (h.T.hs_n >= 2)
  | None -> Alcotest.fail "server.service_ms histogram missing");
  (match List.assoc_opt "router.forward_ms" snap.Snapshot.hists with
  | Some h -> Alcotest.(check bool) "forward hist populated" true (h.T.hs_n >= 2)
  | None -> Alcotest.fail "router.forward_ms histogram missing");
  Alcotest.(check bool) "router counted the requests" true
    (Option.value ~default:0
       (List.assoc_opt "router.requests" snap.Snapshot.counters)
    >= 2);
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", p1));
  shutdown (Client.Tcp ("127.0.0.1", p2));
  Thread.join th1;
  Thread.join th2

(* ---- replication, breakers, deadlines ---- *)

(* Decorrelated-jitter backoff: bounded by [base, cap], geometric growth
   across consecutive failures, and the jitter draw actually spreads. *)
let test_next_backoff () =
  let base = 2. and cap = 30. in
  List.iter
    (fun (prev, u) ->
      let d = Router.next_backoff ~base ~cap ~prev u in
      Alcotest.(check bool)
        (Printf.sprintf "backoff(prev=%.1f, u=%.2f) = %.2f within [base, cap]"
           prev u d)
        true
        (d >= base && d <= cap))
    [ (0., 0.); (0., 0.99); (2., 0.5); (10., 0.99); (30., 0.99); (1e9, 0.5) ];
  (* u=0 pins the draw at base; u->1 approaches min cap (3*prev). *)
  Alcotest.(check (float 1e-9)) "low draw is the base" base
    (Router.next_backoff ~base ~cap ~prev:5. 0.);
  Alcotest.(check bool) "high draw grows toward 3x prev" true
    (Router.next_backoff ~base ~cap ~prev:5. 0.99 > 12.);
  Alcotest.(check bool) "growth is capped" true
    (Router.next_backoff ~base ~cap ~prev:100. 0.99 <= cap)

(* The replica set of a key on a 2-shard ring: (primary, successor) —
   the same placement rule the router applies. *)
let replica_set_of ports req =
  let nodes = List.map (fun p -> Printf.sprintf "127.0.0.1:%d" p) ports in
  let ring = Ring.create nodes in
  let key = Option.get (Router.affinity_key req) in
  let port_of node =
    int_of_string (List.nth (String.split_on_char ':' node) 1)
  in
  match Ring.successors ring key with
  | primary :: replica :: _ -> (port_of primary, port_of replica)
  | _ -> Alcotest.fail "2-node ring must yield 2 successors"

let counter_of name =
  Option.value ~default:0 (List.assoc_opt name (T.report ()).T.r_counters)

(* The tentpole acceptance scenario: a cold adapt through the router is
   written through to the ring successor, so killing the primary
   mid-campaign degrades to a *warm* hit on the replica — same bytes,
   no recompute. *)
let test_replication_warm_failover =
  with_telemetry @@ fun () ->
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  let exp_report, exp_asm = offline_adapt "em3d" in
  let primary, _replica = replica_set_of [ p1; p2 ] (adapt_req "em3d") in
  let r, a, c = expect_adapted (Client.request_addr router (adapt_req "em3d")) in
  Alcotest.(check string) "cold miss on the primary" "miss" c;
  Alcotest.(check bool) "cold bytes identical" true
    (String.equal exp_report r && String.equal exp_asm a);
  (* The write-through happened before the reply was forwarded. *)
  Alcotest.(check bool) "replication counted" true
    (counter_of "router.replicate.ok" >= 1);
  (* Kill the primary; the failover read must be a warm (replica) hit. *)
  shutdown (Client.Tcp ("127.0.0.1", primary));
  Thread.join (if primary = p1 then th1 else th2);
  let r2, a2, c2 =
    expect_adapted (Client.request_retry ~attempts:6 router (adapt_req "em3d"))
  in
  Alcotest.(check string) "failover read is a warm hit, not a recompute"
    "hit" c2;
  Alcotest.(check bool) "failover bytes identical" true
    (String.equal exp_report r2 && String.equal exp_asm a2);
  Alcotest.(check bool) "failover counted" true
    (counter_of "router.failover" >= 1);
  (* The dead primary's read-repair blobs parked as hints. *)
  Alcotest.(check bool) "read-repair blobs parked for the dead primary" true
    (counter_of "router.hinted_handoff.stored" >= 1);
  shutdown router;
  Thread.join r_th;
  let survivor = if primary = p1 then p2 else p1 in
  shutdown (Client.Tcp ("127.0.0.1", survivor));
  Thread.join (if primary = p1 then th2 else th1)

(* A shard restarted on its old port is probed, re-admitted, and handed
   its parked hints — after which it serves the campaign's keys warm
   from a cache it never computed into. *)
let test_breaker_probe_and_hint_flush =
  with_telemetry @@ fun () ->
  let th1, p1 = start_shard () in
  let th2, p2 = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p1); ("127.0.0.1", p2) ] in
  let router = Client.Unix_sock r_sock in
  let exp_report, exp_asm = offline_adapt "mst" in
  let primary, _ = replica_set_of [ p1; p2 ] (adapt_req "mst") in
  (* Kill the primary first: the survivor computes, and the write-through
     aimed at the dead primary parks in the hinted-handoff buffer. *)
  shutdown (Client.Tcp ("127.0.0.1", primary));
  Thread.join (if primary = p1 then th1 else th2);
  let _, _, c =
    expect_adapted (Client.request_retry ~attempts:6 router (adapt_req "mst"))
  in
  Alcotest.(check string) "survivor computes cold" "miss" c;
  Alcotest.(check bool) "hints parked for the dead primary" true
    (counter_of "router.hinted_handoff.stored" >= 2);
  (* Restart a shard on the same port with an empty cache. *)
  let port = ref None in
  let cfg =
    { (shard_config ~cache_dir:(fresh "cache") ()) with
      Server.tcp = Some ("127.0.0.1", primary) }
  in
  let th_new =
    Thread.create
      (fun () -> Server.serve ~ready:(fun ~tcp_port -> port := tcp_port) cfg)
      ()
  in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "restarted shard never came up";
    if !port = None then begin
      Thread.delay 0.01;
      wait (tries - 1)
    end
  in
  wait 500;
  (* The prober re-admits it (breaker close) and flushes the hints. *)
  let rec poll tries =
    if tries = 0 then
      Alcotest.fail "breaker never closed / hints never flushed";
    if
      counter_of "router.breaker.close" >= 1
      && counter_of "router.hinted_handoff.flushed" >= 2
    then ()
    else begin
      Thread.delay 0.1;
      poll (tries - 1)
    end
  in
  poll 200;
  Alcotest.(check bool) "the probe was what re-admitted it" true
    (counter_of "router.breaker.probe_ok" >= 1);
  (* The restarted shard now owns the key again and serves it warm from
     the flushed hints — a cache it never computed into. *)
  let r, a, c2 =
    expect_adapted (Client.request_retry ~attempts:6 router (adapt_req "mst"))
  in
  Alcotest.(check string) "restarted primary serves warm from hints" "hit" c2;
  Alcotest.(check bool) "hint-served bytes identical" true
    (String.equal exp_report r && String.equal exp_asm a);
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", primary));
  Thread.join th_new;
  let survivor = if primary = p1 then p2 else p1 in
  shutdown (Client.Tcp ("127.0.0.1", survivor));
  Thread.join (if primary = p1 then th2 else th1)

(* End-to-end deadlines across the router: an expired budget is shed at
   the router (structured, stage "router") without burning a shard; a
   live budget is decremented per hop and the request still serves. *)
let test_deadline_through_router =
  with_telemetry @@ fun () ->
  let th, p = start_shard () in
  let r_th, r_sock = start_router [ ("127.0.0.1", p) ] in
  let router = Client.Unix_sock r_sock in
  let before = counter_of "server.batches" in
  (match
     Client.request_env ~deadline_ms:(-5.) router (adapt_req "em3d")
   with
  | Proto.Deadline_exceeded { stage; _ }, _, _ ->
    Alcotest.(check string) "shed at the router" "router" stage
  | _ -> Alcotest.fail "expected a router-side deadline shed");
  Alcotest.(check int) "router counted the shed" 1
    (counter_of "router.deadline.shed");
  Alcotest.(check int) "the shed request never reached a shard batch"
    before (counter_of "server.batches");
  let resp, _, _ =
    Client.request_env ~deadline_ms:60_000. router (adapt_req "em3d")
  in
  ignore (expect_adapted resp);
  shutdown router;
  Thread.join r_th;
  shutdown (Client.Tcp ("127.0.0.1", p));
  Thread.join th

(* ---- client retry/backoff ---- *)

let test_client_retries_connect () =
  (* No listener yet: request_retry must back off and succeed once the
     daemon appears — the 'daemon still starting' case. *)
  let socket = fresh "late" ^ ".sock" in
  let waits = ref 0 in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        Server.serve
          {
            Server.socket = Some socket;
            tcp = None;
            jobs = 1;
            cache = None;
            max_frame = Proto.default_max_frame;
            timeout_s = 60.;
            max_batch = 8;
            max_queue = 256;
            retry_after_s = 0.05;
            tune = false;
          })
      ()
  in
  let resp =
    Client.request_retry ~attempts:10 ~base_delay_s:0.05
      ~on_wait:(fun ~reason:_ ~delay_s:_ -> incr waits)
      (Client.Unix_sock socket) Proto.Stats
  in
  (match resp with
  | Proto.Stats_reply _ -> ()
  | _ -> Alcotest.fail "expected stats once the daemon came up");
  Alcotest.(check bool) "at least one backoff happened" true (!waits > 0);
  shutdown (Client.Unix_sock socket);
  Thread.join starter

let test_client_retries_busy () =
  (* A fake endpoint that replies Busy twice, then serves: the client
     must wait twice (honoring retry-after) and return the real reply. *)
  let socket = fresh "busy" ^ ".sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 8;
  let server =
    Thread.create
      (fun () ->
        let serve_one resp =
          let fd, _ = Unix.accept lfd in
          (match Proto.read_frame fd with
          | Some _ -> Proto.write_frame fd (Proto.encode_response resp)
          | None -> ());
          Unix.close fd
        in
        serve_one (Proto.Busy_reply { retry_after_s = 0.02 });
        serve_one (Proto.Busy_reply { retry_after_s = 0.02 });
        serve_one Proto.Ok_reply)
      ()
  in
  let reasons = ref [] in
  let resp =
    Client.request_retry ~attempts:5 ~base_delay_s:0.01
      ~on_wait:(fun ~reason ~delay_s ->
        Alcotest.(check bool) "positive delay" true (delay_s > 0.);
        reasons := reason :: !reasons)
      (Client.Unix_sock socket) Proto.Shutdown
  in
  Thread.join server;
  Unix.close lfd;
  (match resp with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "expected the post-busy reply");
  Alcotest.(check int) "waited exactly twice" 2 (List.length !reasons);
  List.iter
    (fun r ->
      Alcotest.(check string) "busy wait says saturated" "server saturated" r)
    !reasons

let test_client_busy_exhaustion () =
  (* When every attempt is rejected, the client must surface the last
     Busy_reply (so callers can report honestly), not loop forever. *)
  let th, port = start_shard ~max_queue:0 () in
  let addr = Client.Tcp ("127.0.0.1", port) in
  (match
     Client.request_retry ~attempts:2 ~base_delay_s:0.01 addr
       (adapt_req "em3d")
   with
  | Proto.Busy_reply _ -> ()
  | _ -> Alcotest.fail "exhausted retries must return the Busy_reply");
  shutdown addr;
  Thread.join th

let suite =
  [
    Alcotest.test_case "ring: chi^2 balance over 10k keys" `Quick
      test_ring_balance;
    Alcotest.test_case "ring: minimal movement on join" `Quick
      test_ring_minimal_movement_on_join;
    Alcotest.test_case "ring: minimal movement on leave" `Quick
      test_ring_minimal_movement_on_leave;
    Alcotest.test_case "ring: deterministic placement" `Quick
      test_ring_deterministic_across_processes;
    Alcotest.test_case "ring: successors cover all nodes" `Quick
      test_ring_successors;
    Alcotest.test_case "tcp transport byte-identical" `Quick
      test_tcp_transport_identical;
    Alcotest.test_case "router: routes, caches, answers stats" `Quick
      test_router_routes_and_caches;
    Alcotest.test_case "router: chaos failover mid-campaign" `Quick
      test_router_failover_mid_campaign;
    Alcotest.test_case "router: forwards Busy untouched" `Quick
      test_router_forwards_busy;
    Alcotest.test_case "trace: one id across router and shard" `Quick
      test_traced_through_router;
    Alcotest.test_case "stats plane: merged cluster snapshot" `Quick
      test_cluster_snapshot_merge;
    Alcotest.test_case "breaker: decorrelated-jitter backoff bounds" `Quick
      test_next_backoff;
    Alcotest.test_case "replication: kill primary, replica serves warm"
      `Quick test_replication_warm_failover;
    Alcotest.test_case "breaker: probe re-admits, hints flush" `Quick
      test_breaker_probe_and_hint_flush;
    Alcotest.test_case "deadline: shed at router, live budget serves" `Quick
      test_deadline_through_router;
    Alcotest.test_case "client: backoff until daemon appears" `Quick
      test_client_retries_connect;
    Alcotest.test_case "client: honors retry-after, bounded waits" `Quick
      test_client_retries_busy;
    Alcotest.test_case "client: busy exhaustion surfaces Busy" `Quick
      test_client_busy_exhaustion;
  ]
