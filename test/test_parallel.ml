(* Tests for the domain-pool parallel engine: combinator semantics,
   deterministic result ordering under skewed task durations, exception
   propagation, domain-sharded telemetry counters, and the end-to-end
   invariant that a jobs=N adaptation + simulation is byte-identical to
   the sequential run. *)

module Pool = Ssp_parallel.Pool
module T = Ssp_telemetry.Telemetry

let test_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "map" (List.map succ xs)
        (Pool.map pool succ xs);
      Alcotest.(check (array int))
        "map_array"
        (Array.map (fun i -> i * i) (Array.of_list xs))
        (Pool.map_array pool (fun i -> i * i) (Array.of_list xs));
      Alcotest.(check (list int))
        "mapi"
        (List.mapi (fun i x -> i + x) xs)
        (Pool.mapi pool (fun i x -> i + x) xs))

(* Skew the per-task work so completion order differs wildly from input
   order; results must still come back in input order. *)
let test_order_under_skew () =
  let rec spin n = if n > 0 then spin (n - 1) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 64 Fun.id in
      let f i =
        spin ((i mod 7) * 20_000);
        i * 3
      in
      Alcotest.(check (list int)) "ordered" (List.map f xs) (Pool.map pool f xs))

let test_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "map" [ 2; 3; 4 ]
        (Pool.map pool succ [ 1; 2; 3 ]))

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let f i = if i >= 3 then failwith (string_of_int i) else i in
      match Pool.map pool f (List.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index wins" "3" msg);
  (* The pool must survive a failed batch and run the next one. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool (fun _ -> failwith "boom") [ 1; 2 ] with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure _ -> ());
      Alcotest.(check (list int)) "reusable" [ 10; 20 ]
        (Pool.map pool (fun x -> x * 10) [ 1; 2 ]))

(* The winning (lowest-index) exception must carry the *worker's*
   backtrace: the pool stores the raw backtrace captured at the raise
   site and re-raises with [Printexc.raise_with_backtrace], so the trace
   names this file, not the pool's re-raise site. *)
let test_exception_backtrace_preserved () =
  Printexc.record_backtrace true;
  (* Non-tail recursion so the raise site leaves real frames. *)
  let rec deep n = if n = 0 then failwith "deep-raise" else 1 + deep (n - 1) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let f i =
        Printexc.record_backtrace true;
        if i = 2 then deep 10 else i
      in
      match Pool.map pool f (List.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        let bt = Printexc.get_backtrace () in
        Alcotest.(check string) "original exception" "deep-raise" msg;
        let mentions_worker =
          let n = String.length bt and sub = "test_parallel" in
          let m = String.length sub in
          let rec go i = i + m <= n && (String.sub bt i m = sub || go (i + 1)) in
          go 0
        in
        if not mentions_worker then
          Alcotest.failf "backtrace lost the worker's frames:@.%s" bt)

let test_map_reduce () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 101 Fun.id in
      Alcotest.(check int)
        "sum of squares"
        (List.fold_left (fun a i -> a + (i * i)) 0 xs)
        (Pool.map_reduce pool ~map:(fun i -> i * i) ~reduce:( + ) 0 xs))

let test_run_side_effects () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let slots = Array.make 32 0 in
      Pool.run pool
        (List.init 32 (fun i () -> slots.(i) <- i + 1));
      Alcotest.(check (array int))
        "every task ran once"
        (Array.init 32 (fun i -> i + 1))
        slots)

(* Concurrent counter increments from N domains must sum exactly: each
   pool worker mutates its own domain-local shard unsynchronized, and the
   report merge adds the shards up by name. *)
let test_sharded_counters () =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    (fun () ->
      let tasks = 40 and per_task = 1000 in
      Pool.with_pool ~jobs:4 (fun pool ->
          Pool.run pool
            (List.init tasks (fun _ () ->
                 let c = T.counter "parallel.test" in
                 for _ = 1 to per_task do
                   T.incr c
                 done)));
      Alcotest.(check int)
        "exact sum across domains" (tasks * per_task)
        (List.assoc "parallel.test" (T.report ()).T.r_counters))

(* The tentpole invariant: same input, same seed, jobs=4 must produce the
   same adapted binary, report, cycle counts, attribution classification
   and explain tables as jobs=1 — byte for byte. *)
let check_workload name =
  let w = Ssp_workloads.Suite.find name in
  let cfg = Ssp_machine.Config.scale_caches Ssp_machine.Config.in_order 16 in
  let prog = Ssp_workloads.Workload.program w ~scale:3 in
  let profile = Ssp_profiling.Collect.collect ~config:cfg prog in
  let full jobs =
    let result = Ssp.Adapt.run ~jobs ~config:cfg prog profile in
    let attrib =
      Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
    in
    let stats = Ssp_sim.Inorder.run ~attrib cfg result.Ssp.Adapt.prog in
    let explain =
      Ssp.Explain.build ~result ~stats ~attrib:(Ssp_sim.Attrib.summary attrib)
        ()
    in
    (result, stats, explain)
  in
  let r1, s1, e1 = full 1 in
  let r4, s4, e4 = full 4 in
  Alcotest.(check string)
    (name ^ ": adapted binary")
    (Format.asprintf "%a" Ssp_ir.Asm.print r1.Ssp.Adapt.prog)
    (Format.asprintf "%a" Ssp_ir.Asm.print r4.Ssp.Adapt.prog);
  Alcotest.(check string)
    (name ^ ": adaptation report")
    (Format.asprintf "%a" Ssp.Report.pp r1.Ssp.Adapt.report)
    (Format.asprintf "%a" Ssp.Report.pp r4.Ssp.Adapt.report);
  Alcotest.(check int)
    (name ^ ": cycle count") s1.Ssp_sim.Stats.cycles s4.Ssp_sim.Stats.cycles;
  Alcotest.(check string)
    (name ^ ": sim stats")
    (Format.asprintf "%a" Ssp_sim.Stats.pp s1)
    (Format.asprintf "%a" Ssp_sim.Stats.pp s4);
  Alcotest.(check string)
    (name ^ ": explain JSON (attribution)")
    (Ssp.Explain.to_json e1) (Ssp.Explain.to_json e4)

let test_adapt_deterministic_mcf () = check_workload "mcf"
let test_adapt_deterministic_em3d () = check_workload "em3d"

let suite =
  [
    Alcotest.test_case "map/map_array/mapi match sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "result order survives skewed durations" `Quick
      test_order_under_skew;
    Alcotest.test_case "jobs=1 sequential fallback" `Quick
      test_sequential_fallback;
    Alcotest.test_case "lowest-index exception propagates" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "exception keeps worker backtrace" `Quick
      test_exception_backtrace_preserved;
    Alcotest.test_case "map_reduce" `Quick test_map_reduce;
    Alcotest.test_case "run executes every task once" `Quick
      test_run_side_effects;
    Alcotest.test_case "sharded counters sum exactly" `Quick
      test_sharded_counters;
    Alcotest.test_case "jobs=4 byte-identical: mcf" `Slow
      test_adapt_deterministic_mcf;
    Alcotest.test_case "jobs=4 byte-identical: em3d" `Slow
      test_adapt_deterministic_em3d;
  ]
