(* The closed feedback loop: attribution-report and aggregate codecs,
   the monotone knob lattice (every tuning trajectory reaches a fixed
   point; a fully-redundant load is demoted to skip within three
   rounds), and the end-to-end loop on a real workload — simulate,
   report, tune, republish — preserving the chaos invariant (outputs
   bit-identical to the unadapted program) while strictly shrinking the
   redundant-prefetch count. *)

module Fb = Ssp_feedback.Feedback
module Store = Ssp_store.Store
module T = Ssp_telemetry.Telemetry
module Iref = Ssp_ir.Iref
module Suite = Ssp_workloads.Suite
module Workload = Ssp_workloads.Workload

let iref fn blk ins = Iref.make fn blk ins

let hist samples =
  let h = T.empty_hist_summary () in
  List.fold_left
    (fun (h : T.hist_summary) v ->
      let counts = Array.copy h.T.hs_counts in
      let i = T.hist_index v in
      counts.(i) <- counts.(i) + 1;
      {
        T.hs_n = h.T.hs_n + 1;
        hs_sum = h.T.hs_sum +. v;
        hs_min = (if h.T.hs_n = 0 then v else min h.T.hs_min v);
        hs_max = (if h.T.hs_n = 0 then v else max h.T.hs_max v);
        hs_counts = counts;
      })
    h samples

let load_stat ?(issued = 0) ?(useful = 0) ?(late = 0) ?(early = 0)
    ?(redundant = 0) ?(dropped = 0) ?(unused = 0) ?(accesses = 0) ?(hits = 0)
    ?(leads = []) load =
  {
    Fb.fl_load = load;
    fl_issued = issued;
    fl_useful = useful;
    fl_late = late;
    fl_early_evicted = early;
    fl_redundant = redundant;
    fl_dropped = dropped;
    fl_unused = unused;
    fl_demand_accesses = accesses;
    fl_demand_hits = hits;
    fl_lead_hist = hist leads;
  }

let report ?(prog = Fb.Named "mcf") ?(scale = 2) ?(pipeline = "inorder")
    ?(version = 0) ?(cycles = 1000) loads =
  {
    Fb.fr_prog = prog;
    fr_scale = scale;
    fr_pipeline = pipeline;
    fr_version = version;
    fr_cycles = cycles;
    fr_loads = loads;
  }

(* ---- codecs ---- *)

let test_report_roundtrip () =
  let rep =
    report ~prog:(Fb.Inline "int main() { return 0; }") ~scale:3
      ~pipeline:"ooo" ~version:7 ~cycles:123456
      [
        load_stat (iref "f" 1 2) ~issued:10 ~useful:4 ~late:2 ~early:1
          ~redundant:3 ~dropped:1 ~unused:2 ~accesses:100 ~hits:40
          ~leads:[ 1.; 5.; 120.; 800. ];
        load_stat (iref "g" 0 0) ~redundant:99 ~accesses:99;
      ]
  in
  let blob = Fb.encode_report rep in
  Alcotest.(check bool)
    "sealed as a feedback-report blob" true
    (Store.blob_kind blob = Some Store.kind_feedback_report);
  let rt = Fb.decode_report blob in
  Alcotest.(check bool) "report survives the roundtrip" true (rt = rep);
  Alcotest.(check string)
    "canonical: re-encoding is byte-identical" blob (Fb.encode_report rt);
  (* A blob of another kind is a structured decode error, not a crash. *)
  (match Fb.decode_report (Fb.encode_aggregate Fb.empty_aggregate) with
  | _ -> Alcotest.fail "aggregate blob decoded as a report"
  | exception Ssp_ir.Error.Error _ -> ());
  match Fb.decode_report "garbage" with
  | _ -> Alcotest.fail "garbage decoded as a report"
  | exception Ssp_ir.Error.Error _ -> ()

let test_aggregate_roundtrip_and_staleness () =
  let l = iref "f" 1 2 in
  let fresh c =
    report ~cycles:c [ load_stat l ~issued:80 ~useful:40 ~redundant:20 ]
  in
  let agg = Fb.fold_reports ~now:100. Fb.empty_aggregate [ fresh 10; fresh 20 ] in
  (* A report stamped with another tuning version never merges. *)
  let agg =
    Fb.ingest ~now:101. agg
      (report ~version:9 [ load_stat l ~issued:1000 ~redundant:1000 ])
  in
  Alcotest.(check int) "merged reports" 2 agg.Fb.ag_reports;
  Alcotest.(check int) "stale rejected" 1 agg.Fb.ag_stale;
  Alcotest.(check int) "lifetime total" 3 agg.Fb.ag_total_reports;
  let a = Iref.Map.find l agg.Fb.ag_loads in
  (* Scalars decay per merged report; ratios are decay-invariant. *)
  (* attempts = issued + redundant + dropped = 100 per report *)
  Alcotest.(check (float 1e-9)) "accuracy" 0.4 (Fb.accuracy a);
  Alcotest.(check (float 1e-9)) "redundant frac" 0.2 (Fb.redundant_frac a);
  Alcotest.(check (float 1e-6))
    "decayed issues"
    ((80. *. Fb.default_decay) +. 80.)
    a.Fb.al_issued;
  let rt = Fb.decode_aggregate (Fb.encode_aggregate agg) in
  Alcotest.(check bool) "aggregate survives the roundtrip" true (rt = agg)

(* ---- the knob lattice ---- *)

let knobs = Ssp.Adapt.default_knobs

(* Drive plan/publish rounds on a fixed per-round report shape (the
   fleet keeps measuring the same signals) until the plan is empty.
   Returns the rounds taken and the final aggregate. *)
let run_rounds ?(max_rounds = 10) loads =
  let rec go agg n =
    if n >= max_rounds then (n, agg)
    else
      let reports =
        List.init 3 (fun i ->
            report ~version:agg.Fb.ag_version ~cycles:(1000 + i) loads)
      in
      let full = Fb.fold_reports ~now:10. agg reports in
      let overrides, actions = Fb.plan ~knobs full in
      if actions = [] then (n, full)
      else go (Fb.publish ~now:10. full ~overrides ~actions) (n + 1)
  in
  go Fb.empty_aggregate 0

let test_redundant_load_reaches_skip () =
  let l = iref "walk" 2 0 in
  (* Fully redundant: every prefetch found its line already present. *)
  let rounds, agg =
    run_rounds [ load_stat l ~redundant:1000 ~accesses:1000 ~hits:1000 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "reaches a fixed point in <=3 rounds (took %d)" rounds)
    true (rounds <= 3);
  let k = Iref.Map.find l agg.Fb.ag_overrides in
  Alcotest.(check bool) "demoted to skip" true k.Ssp.Adapt.lk_skip;
  (* Skip is absorbing: one more round is a no-op. *)
  let full =
    Fb.fold_reports ~now:10. agg
      (List.init 3 (fun i ->
           report ~version:agg.Fb.ag_version ~cycles:i
             [ load_stat l ~redundant:1000 ~accesses:1000 ~hits:1000 ]))
  in
  let _, actions = Fb.plan ~knobs full in
  Alcotest.(check int) "fixed point" 0 (List.length actions)

let test_late_load_promotes () =
  let l = iref "chase" 1 0 in
  let rounds, agg =
    run_rounds
      [ load_stat l ~issued:500 ~useful:100 ~late:400 ~accesses:1000 ]
  in
  let k = Iref.Map.find l agg.Fb.ag_overrides in
  Alcotest.(check bool)
    "promoted to the chaining model" true
    (k.Ssp.Adapt.lk_model = `Chaining);
  Alcotest.(check int) "lookahead widened to the cap" 8 k.Ssp.Adapt.lk_unroll;
  Alcotest.(check bool) "never skipped" false k.Ssp.Adapt.lk_skip;
  Alcotest.(check bool)
    (Printf.sprintf "fixed point within the lattice height (took %d)" rounds)
    true (rounds <= 5)

(* Any signal mix converges: the lattice is finite and every move is
   strictly upward, so repeated planning on stationary signals always
   reaches a fixed point well inside the lattice height. *)
let prop_always_converges =
  QCheck.Test.make ~name:"tuning reaches a fixed point on any signals"
    ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 4)
            (quad (int_range 0 2000) (int_range 0 2000) (int_range 0 2000)
               (int_range 0 2000))))
    (fun loads ->
      let loads =
        List.mapi
          (fun i (issued, useful, late, redundant) ->
            load_stat
              (iref "f" i 0)
              ~issued ~useful ~late ~redundant
              ~accesses:(issued + useful + late + redundant))
          loads
      in
      let rounds, _ = run_rounds ~max_rounds:8 loads in
      rounds < 8)

(* ---- end-to-end on a real workload ---- *)

let with_temp_cache f =
  let dir = Filename.temp_dir "sspc_feedback_test" "" in
  f (Store.Cache.open_dir dir)

let sum_redundant (s : Ssp_sim.Attrib.summary) =
  List.fold_left
    (fun acc (l : Ssp_sim.Attrib.load_summary) -> acc + l.ls_redundant)
    0 s.Ssp_sim.Attrib.loads

(* simulate -> report -> tune -> republish, looping until the tuner
   holds still. The chaos invariant must survive every published
   version, the warm fetch must serve the published bytes, and the
   redundant-prefetch count must strictly drop on this workload (mcf's
   pointer walks prefetch lines that are overwhelmingly already
   resident). *)
let test_e2e_loop () =
  let config = Ssp_machine.Config.in_order in
  let prog = Workload.program (Suite.find "mcf") ~scale:2 in
  let profile = Ssp_profiling.Collect.collect ~config prog in
  let base = Ssp_sim.Inorder.run config prog in
  with_temp_cache @@ fun cache ->
  let simulate result =
    let attrib =
      Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
    in
    let stats = Ssp_sim.Inorder.run ~attrib config result.Ssp.Adapt.prog in
    Alcotest.(check (list int64))
      "outputs bit-identical to the unadapted program"
      base.Ssp_sim.Stats.outputs stats.Ssp_sim.Stats.outputs;
    (stats, Ssp_sim.Attrib.summary attrib)
  in
  let r0, _ = Store.run_cached ~cache ~config prog profile in
  let stats0, sum0 = simulate r0 in
  let red0 = sum_redundant sum0 in
  Alcotest.(check bool)
    "untuned mcf issues redundant prefetches" true (red0 > 0);
  let mk_report version (stats : Ssp_sim.Stats.t) summary =
    Fb.report_of_attrib ~prog:(Fb.Named "mcf") ~scale:2 ~pipeline:"inorder"
      ~version ~cycles:stats.Ssp_sim.Stats.cycles summary
  in
  let rec converge reports version result n =
    if n > 6 then Alcotest.fail "tuner failed to reach a fixed point"
    else
      match
        Fb.tune_reports ~cache ~now:50. ~min_reports:1 ~config prog profile
          reports
      with
      | None -> (version, result)
      | Some t ->
        let v = t.Fb.td_aggregate.Fb.ag_version in
        Alcotest.(check int) "versions count up" (version + 1) v;
        (* Warm fetch under the version-stamped key returns the published
           bytes — the immutable-artifact contract. *)
        let fetched, status =
          Store.run_cached ~cache
            ~tuning:(v, t.Fb.td_aggregate.Fb.ag_overrides)
            ~config prog profile
        in
        Alcotest.(check bool) "published artifact is warm" true
          (status = `Hit);
        Alcotest.(check string)
          "warm fetch is byte-identical to the published artifact"
          (Format.asprintf "%a@." Ssp_ir.Asm.print t.Fb.td_result.Ssp.Adapt.prog)
          (Format.asprintf "%a@." Ssp_ir.Asm.print fetched.Ssp.Adapt.prog);
        let stats, summary = simulate t.Fb.td_result in
        converge (mk_report v stats summary :: reports) v t.Fb.td_result (n + 1)
  in
  let v, tuned = converge [ mk_report 0 stats0 sum0 ] 0 r0 0 in
  Alcotest.(check bool) "at least one version was published" true (v >= 1);
  (* Fixed point is stable: tuning the tuned artifact's own reports
     again still does nothing. *)
  let stats_t, sum_t = simulate tuned in
  Alcotest.(check bool)
    "re-tuning on the fixed point is a no-op" true
    (Fb.tune_reports ~cache ~now:60. ~min_reports:1 ~config prog profile
       [ mk_report v stats_t sum_t ]
    = None);
  let red_t = sum_redundant sum_t in
  Alcotest.(check bool)
    (Printf.sprintf "redundant prefetches strictly decrease (%d -> %d)" red0
       red_t)
    true
    (red_t < red0)

(* Offline store walking must reproduce the daemon's rounds: persist the
   reports the way the server does, run [tune_store] on the directory,
   and the published artifact must match a direct [tune_reports] on a
   separate store byte for byte — the determinism contract behind the
   CI byte-compare. *)
let test_tune_store_deterministic () =
  let config = Ssp_machine.Config.in_order in
  let prog = Workload.program (Suite.find "mcf") ~scale:2 in
  let profile = Ssp_profiling.Collect.collect ~config prog in
  let r0 =
    let r, _ = Store.run_cached ~config prog profile in
    r
  in
  let attrib =
    Ssp_sim.Attrib.create ~prefetch_map:r0.Ssp.Adapt.prefetch_map ()
  in
  let stats = Ssp_sim.Inorder.run ~attrib config r0.Ssp.Adapt.prog in
  let reports =
    List.init 3 (fun i ->
        Fb.report_of_attrib ~prog:(Fb.Named "mcf") ~scale:2
          ~pipeline:"inorder" ~version:0
          ~cycles:(stats.Ssp_sim.Stats.cycles + i)
          (Ssp_sim.Attrib.summary attrib))
  in
  let direct =
    with_temp_cache @@ fun cache ->
    match
      Fb.tune_reports ~cache ~now:50. ~config prog profile reports
    with
    | Some t ->
      Format.asprintf "%a@." Ssp_ir.Asm.print t.Fb.td_result.Ssp.Adapt.prog
    | None -> Alcotest.fail "direct round made no plan"
  in
  with_temp_cache @@ fun cache ->
  List.iter
    (fun rep ->
      let blob = Fb.encode_report rep in
      Store.Cache.put cache (Fb.report_store_key blob) blob)
    reports;
  match Fb.tune_store ~now:50. cache with
  | [ st ] ->
    Alcotest.(check int) "reports found" 3 st.Fb.st_reports;
    (match st.Fb.st_tuned with
    | Some t ->
      Alcotest.(check string)
        "offline walk publishes byte-identical artifact" direct
        (Format.asprintf "%a@." Ssp_ir.Asm.print
           t.Fb.td_result.Ssp.Adapt.prog)
    | None -> Alcotest.fail "store walk made no plan")
  | other ->
    Alcotest.failf "expected one tuned workload, got %d" (List.length other)

let suite =
  [
    Alcotest.test_case "report codec roundtrip + kind checks" `Quick
      test_report_roundtrip;
    Alcotest.test_case "aggregate: decayed merge, staleness, roundtrip" `Quick
      test_aggregate_roundtrip_and_staleness;
    Alcotest.test_case "lattice: fully-redundant load skipped in <=3 rounds"
      `Quick test_redundant_load_reaches_skip;
    Alcotest.test_case "lattice: chronically-late load promotes, never skips"
      `Quick test_late_load_promotes;
    QCheck_alcotest.to_alcotest prop_always_converges;
    Alcotest.test_case "e2e: sim -> report -> tune -> republish" `Slow
      test_e2e_loop;
    Alcotest.test_case "offline tune_store matches direct round" `Slow
      test_tune_store_deterministic;
  ]
