(* The adaptation daemon, hosted in-process on a thread: served replies
   must be byte-identical to the offline pipeline, a warm cache must
   hit, and chaos clients (malformed frames, oversized frames,
   mid-request disconnects) must get structured errors — or lose only
   their own connection — while the daemon keeps serving. *)

module Server = Ssp_server.Server
module Client = Ssp_server.Client
module Proto = Ssp_server.Proto
module Store = Ssp_store.Store
module Suite = Ssp_workloads.Suite
module Workload = Ssp_workloads.Workload

let scale = Suite.test_scale
let config = Ssp_machine.Config.in_order

let wait_for_socket socket =
  let rec go tries =
    if tries = 0 then Alcotest.fail "server socket never came up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      Thread.delay 0.05;
      go (tries - 1)
  in
  go 100

let with_server ?(jobs = 2) ?(with_cache = true) ?(timeout_s = 60.)
    ?(max_batch = 32) ?(max_queue = 256) f =
  let dir = Filename.temp_dir "sspc_server_test" "" in
  let socket = Filename.concat dir "d.sock" in
  let cache =
    if with_cache then
      Some (Store.Cache.open_dir (Filename.concat dir "cache"))
    else None
  in
  let cfg =
    {
      Server.socket = Some socket;
      tcp = None;
      jobs;
      cache;
      max_frame = Proto.default_max_frame;
      timeout_s;
      max_batch;
      max_queue;
      retry_after_s = 0.05;
    }
  in
  let th = Thread.create Server.serve cfg in
  wait_for_socket socket;
  let shut () =
    (try ignore (Client.request ~socket Proto.Shutdown)
     with Unix.Unix_error _ | Ssp_ir.Error.Error _ -> ());
    Thread.join th
  in
  Fun.protect ~finally:shut (fun () -> f socket)

let offline_adapt name =
  let prog = Workload.program (Suite.find name) ~scale in
  let profile = Ssp_profiling.Collect.collect prog in
  let result = Ssp.Adapt.run ~config prog profile in
  ( Format.asprintf "%a@." Ssp.Report.pp result.Ssp.Adapt.report,
    Format.asprintf "%a@." Ssp_ir.Asm.print result.Ssp.Adapt.prog )

let adapt_req ?(tenant = Proto.default_tenant) name =
  Proto.Adapt { prog = Proto.Workload name; scale; pipeline = "inorder"; tenant }

let expect_adapted = function
  | Proto.Adapted { report; asm; cache } -> (report, asm, cache)
  | Proto.Error_reply { pass; what; _ } ->
    Alcotest.fail (Printf.sprintf "server error [%s]: %s" pass what)
  | _ -> Alcotest.fail "expected an Adapted reply"

let test_adapt_cold_warm_identical () =
  with_server @@ fun socket ->
  let exp_report, exp_asm = offline_adapt "em3d" in
  let r1, a1, c1 = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  let r2, a2, c2 = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  Alcotest.(check string) "cold request misses" "miss" c1;
  Alcotest.(check string) "warm request hits" "hit" c2;
  Alcotest.(check bool) "cold report matches offline" true
    (String.equal exp_report r1);
  Alcotest.(check bool) "cold asm matches offline" true
    (String.equal exp_asm a1);
  Alcotest.(check bool) "warm report identical" true (String.equal r1 r2);
  Alcotest.(check bool) "warm asm identical" true (String.equal a1 a2)

let test_no_cache_serves_off () =
  with_server ~with_cache:false @@ fun socket ->
  let _, _, c = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  Alcotest.(check string) "cacheless server reports off" "off" c

let test_sim_matches_offline () =
  with_server @@ fun socket ->
  let prog = Workload.program (Suite.find "em3d") ~scale in
  let expected =
    Format.asprintf "%a@." Ssp_sim.Stats.pp (Ssp_sim.Inorder.run config prog)
  in
  match
    Client.request ~socket
      (Proto.Sim
         { prog = Proto.Workload "em3d"; scale; pipeline = "inorder";
           ssp = false; tenant = Proto.default_tenant })
  with
  | Proto.Simmed { stats } ->
    Alcotest.(check bool) "sim stats match offline" true
      (String.equal expected stats)
  | _ -> Alcotest.fail "expected a Simmed reply"

let test_stats_and_errors () =
  with_server @@ fun socket ->
  (match Client.request ~socket Proto.Stats with
  | Proto.Stats_reply _ -> ()
  | _ -> Alcotest.fail "expected a Stats reply");
  (match Client.request ~socket (adapt_req "no-such-workload") with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "unknown workload is a server error" "server" pass
  | _ -> Alcotest.fail "expected an error for an unknown workload");
  match
    Client.request ~socket
      (Proto.Adapt
         { prog = Proto.Source "int main( {"; scale; pipeline = "inorder";
           tenant = Proto.default_tenant })
  with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "bad source is a frontend error" "frontend" pass
  | _ -> Alcotest.fail "expected an error for unparsable source"

(* ---- chaos clients ---- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let test_malformed_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* A well-framed payload of garbage: decoding must fail structurally. *)
  Proto.write_frame fd "this is not a request";
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply _ -> ()
    | _ -> Alcotest.fail "expected an error reply to garbage")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  (* The daemon survived. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_oversized_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* Only the 4-byte header, declaring an absurd length. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (Proto.default_max_frame + 1));
  let n = Unix.write_substring fd (Buffer.contents b) 0 4 in
  Alcotest.(check int) "header sent" 4 n;
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; _ } ->
      Alcotest.(check string) "oversized frame is a proto error" "proto" pass
    | _ -> Alcotest.fail "expected an error reply to an oversized frame")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_hostile_length_field () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* A well-framed Adapt request whose workload-name length is near
     max_int: the bounds check must fail structurally, not overflow into
     a crash that kills the daemon. *)
  let b = Store.Bin.writer () in
  Store.Bin.w_str b "SSPQ";
  Store.Bin.w_u8 b Proto.proto_version;
  Store.Bin.w_u8 b 1 (* Adapt *);
  Store.Bin.w_u8 b 0 (* Workload *);
  Store.Bin.w_int b (max_int - 4);
  Proto.write_frame fd (Store.Bin.contents b);
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; _ } ->
      Alcotest.(check string) "hostile length is a store error" "store" pass
    | _ -> Alcotest.fail "expected an error reply to a hostile length")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_non_draining_peer () =
  with_server @@ fun socket ->
  (* Pipeline many adapt requests and never read a byte: the replies
     overrun the socket buffer, and must park in the server's per-conn
     output buffer instead of wedging the select loop. *)
  let stalled = raw_connect socket in
  let req = Proto.frame (Proto.encode_request (adapt_req "em3d")) in
  for _ = 1 to 40 do
    ignore (Unix.write_substring stalled req 0 (String.length req))
  done;
  (* Other clients must still be served while the stalled peer sits on
     its unread replies. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "mst")) in
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "mst")) in
  Unix.close stalled;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_mid_request_disconnect () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* Declare 100 payload bytes, deliver 10, vanish. *)
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 100l;
  Buffer.add_string b "partialpay";
  ignore (Unix.write_substring fd (Buffer.contents b) 0 (Buffer.length b));
  Unix.close fd;
  (* The daemon shrugs and keeps serving. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_partial_frame_times_out () =
  with_server ~timeout_s:0.2 @@ fun socket ->
  let fd = raw_connect socket in
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 100l;
  Buffer.add_string b "stalled";
  ignore (Unix.write_substring fd (Buffer.contents b) 0 (Buffer.length b));
  (* Don't finish the frame; the server's sweep must reply with a
     structured timeout (its select tick is 1s). *)
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; what; _ } ->
      Alcotest.(check string) "timeout is a server error" "server" pass;
      Alcotest.(check bool) "mentions the timeout" true
        (String.length what > 0)
    | _ -> Alcotest.fail "expected a timeout error reply")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd

let test_concurrent_clients () =
  with_server ~jobs:2 @@ fun socket ->
  let results = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let name = if i mod 2 = 0 then "em3d" else "mst" in
            results.(i) <- Some (Client.request ~socket (adapt_req name)))
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Proto.Adapted _) -> ()
      | Some (Proto.Error_reply { pass; what; _ }) ->
        Alcotest.fail
          (Printf.sprintf "client %d got server error [%s]: %s" i pass what)
      | _ -> Alcotest.fail (Printf.sprintf "client %d got no reply" i))
    results

(* ---- admission control ---- *)

module Admission = Ssp_server.Admission

let test_drr_fairness () =
  (* A hot tenant with 100 queued requests must not starve a light one:
     deficit round-robin alternates, so a round of 6 takes 3 from each. *)
  let adm = Admission.create () in
  for i = 1 to 100 do
    Admission.enqueue adm ~tenant:"hot" (Printf.sprintf "hot-%d" i)
  done;
  for i = 1 to 3 do
    Admission.enqueue adm ~tenant:"light" (Printf.sprintf "light-%d" i)
  done;
  let round = Admission.select adm ~max:6 in
  let count t = List.length (List.filter (fun (t', _) -> t' = t) round) in
  Alcotest.(check int) "round size" 6 (List.length round);
  Alcotest.(check int) "hot tenant share" 3 (count "hot");
  Alcotest.(check int) "light tenant share" 3 (count "light");
  Alcotest.(check int) "backlog accounts the round" 97 (Admission.backlog adm);
  (* The light tenant drains; the hot one keeps the whole next round. *)
  let round2 = Admission.select adm ~max:4 in
  Alcotest.(check int) "drained tenant leaves the rotation" 4
    (List.length (List.filter (fun (t, _) -> t = "hot") round2))

let test_drr_order_within_tenant () =
  let adm = Admission.create () in
  List.iter (fun x -> Admission.enqueue adm ~tenant:"t" x) [ "a"; "b"; "c" ];
  Alcotest.(check (list string))
    "FIFO within a tenant" [ "a"; "b"; "c" ]
    (List.map snd (Admission.select adm ~max:10))

let test_saturation_busy_reply () =
  (* With a backlog bound of 2, pipelining many requests on one
     connection must produce at least one Busy_reply — and every
     non-busy reply must still carry the right bytes. *)
  with_server ~jobs:1 ~max_batch:1 ~max_queue:2 @@ fun socket ->
  let exp_report, exp_asm = offline_adapt "em3d" in
  let fd = raw_connect socket in
  let req = Proto.frame (Proto.encode_request (adapt_req "em3d")) in
  let n = 10 in
  for _ = 1 to n do
    ignore (Unix.write_substring fd req 0 (String.length req))
  done;
  let busy = ref 0 and served = ref 0 in
  for _ = 1 to n do
    match Proto.read_frame fd with
    | None -> Alcotest.fail "server closed mid-pipeline"
    | Some payload -> (
      match Proto.decode_response payload with
      | Proto.Busy_reply { retry_after_s } ->
        incr busy;
        Alcotest.(check bool) "retry-after hint is positive" true
          (retry_after_s > 0.)
      | Proto.Adapted { report; asm; cache = _ } ->
        incr served;
        Alcotest.(check bool) "served bytes identical under pressure" true
          (String.equal exp_report report && String.equal exp_asm asm)
      | _ -> Alcotest.fail "unexpected reply under saturation")
  done;
  Unix.close fd;
  Alcotest.(check int) "every request answered" n (!busy + !served);
  Alcotest.(check bool) "saturation produced rejections" true (!busy > 0);
  Alcotest.(check bool) "some requests were still served" true (!served > 0)

let test_reject_all_when_queue_zero () =
  with_server ~max_queue:0 @@ fun socket ->
  match Client.request ~socket (adapt_req "em3d") with
  | Proto.Busy_reply _ -> ()
  | _ -> Alcotest.fail "max_queue=0 must reject all work"

let test_shutdown () =
  let dir = Filename.temp_dir "sspc_server_test" "" in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    {
      (Server.default_config ~socket) with
      Server.cache = None;
      jobs = 1;
    }
  in
  let th = Thread.create Server.serve cfg in
  wait_for_socket socket;
  (match Client.request ~socket Proto.Shutdown with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "expected shutdown to be acknowledged");
  Thread.join th;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let suite =
  [
    Alcotest.test_case "adapt: cold/warm, byte-identical to offline" `Quick
      test_adapt_cold_warm_identical;
    Alcotest.test_case "adapt without a cache" `Quick test_no_cache_serves_off;
    Alcotest.test_case "sim matches offline" `Quick test_sim_matches_offline;
    Alcotest.test_case "stats + structured request errors" `Quick
      test_stats_and_errors;
    Alcotest.test_case "chaos: malformed frame" `Quick test_malformed_frame;
    Alcotest.test_case "chaos: oversized frame" `Quick test_oversized_frame;
    Alcotest.test_case "chaos: hostile length field" `Quick
      test_hostile_length_field;
    Alcotest.test_case "chaos: non-draining peer" `Quick
      test_non_draining_peer;
    Alcotest.test_case "chaos: mid-request disconnect" `Quick
      test_mid_request_disconnect;
    Alcotest.test_case "chaos: stalled partial frame times out" `Quick
      test_partial_frame_times_out;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "admission: DRR fairness across tenants" `Quick
      test_drr_fairness;
    Alcotest.test_case "admission: FIFO within a tenant" `Quick
      test_drr_order_within_tenant;
    Alcotest.test_case "admission: saturation gets Busy, service stays exact"
      `Quick test_saturation_busy_reply;
    Alcotest.test_case "admission: max_queue=0 rejects all work" `Quick
      test_reject_all_when_queue_zero;
    Alcotest.test_case "clean shutdown" `Quick test_shutdown;
  ]
