(* The adaptation daemon, hosted in-process on a thread: served replies
   must be byte-identical to the offline pipeline, a warm cache must
   hit, and chaos clients (malformed frames, oversized frames,
   mid-request disconnects) must get structured errors — or lose only
   their own connection — while the daemon keeps serving. *)

module Server = Ssp_server.Server
module Client = Ssp_server.Client
module Proto = Ssp_server.Proto
module Store = Ssp_store.Store
module Suite = Ssp_workloads.Suite
module Workload = Ssp_workloads.Workload

let scale = Suite.test_scale
let config = Ssp_machine.Config.in_order

let wait_for_socket socket =
  let rec go tries =
    if tries = 0 then Alcotest.fail "server socket never came up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      Thread.delay 0.05;
      go (tries - 1)
  in
  go 100

let with_server ?(jobs = 2) ?(with_cache = true) ?cache_max_bytes
    ?(timeout_s = 60.) ?(max_batch = 32) ?(max_queue = 256) ?(tune = false) f =
  let dir = Filename.temp_dir "sspc_server_test" "" in
  let socket = Filename.concat dir "d.sock" in
  let cache =
    if with_cache then
      Some
        (Store.Cache.open_dir ?max_bytes:cache_max_bytes
           (Filename.concat dir "cache"))
    else None
  in
  let cfg =
    {
      Server.socket = Some socket;
      tcp = None;
      jobs;
      cache;
      max_frame = Proto.default_max_frame;
      timeout_s;
      max_batch;
      max_queue;
      retry_after_s = 0.05;
      tune;
    }
  in
  let th = Thread.create Server.serve cfg in
  wait_for_socket socket;
  let shut () =
    (try ignore (Client.request ~socket Proto.Shutdown)
     with Unix.Unix_error _ | Ssp_ir.Error.Error _ -> ());
    Thread.join th
  in
  Fun.protect ~finally:shut (fun () -> f socket)

let offline_adapt name =
  let prog = Workload.program (Suite.find name) ~scale in
  let profile = Ssp_profiling.Collect.collect prog in
  let result = Ssp.Adapt.run ~config prog profile in
  ( Format.asprintf "%a@." Ssp.Report.pp result.Ssp.Adapt.report,
    Format.asprintf "%a@." Ssp_ir.Asm.print result.Ssp.Adapt.prog )

let adapt_req ?(tenant = Proto.default_tenant) name =
  Proto.Adapt { prog = Proto.Workload name; scale; pipeline = "inorder"; tenant }

let expect_adapted = function
  | Proto.Adapted { report; asm; cache } -> (report, asm, cache)
  | Proto.Error_reply { pass; what; _ } ->
    Alcotest.fail (Printf.sprintf "server error [%s]: %s" pass what)
  | _ -> Alcotest.fail "expected an Adapted reply"

let test_adapt_cold_warm_identical () =
  with_server @@ fun socket ->
  let exp_report, exp_asm = offline_adapt "em3d" in
  let r1, a1, c1 = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  let r2, a2, c2 = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  Alcotest.(check string) "cold request misses" "miss" c1;
  Alcotest.(check string) "warm request hits" "hit" c2;
  Alcotest.(check bool) "cold report matches offline" true
    (String.equal exp_report r1);
  Alcotest.(check bool) "cold asm matches offline" true
    (String.equal exp_asm a1);
  Alcotest.(check bool) "warm report identical" true (String.equal r1 r2);
  Alcotest.(check bool) "warm asm identical" true (String.equal a1 a2)

let test_no_cache_serves_off () =
  with_server ~with_cache:false @@ fun socket ->
  let _, _, c = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  Alcotest.(check string) "cacheless server reports off" "off" c

let test_sim_matches_offline () =
  with_server @@ fun socket ->
  let prog = Workload.program (Suite.find "em3d") ~scale in
  let expected =
    Format.asprintf "%a@." Ssp_sim.Stats.pp (Ssp_sim.Inorder.run config prog)
  in
  match
    Client.request ~socket
      (Proto.Sim
         { prog = Proto.Workload "em3d"; scale; pipeline = "inorder";
           ssp = false; tenant = Proto.default_tenant })
  with
  | Proto.Simmed { stats } ->
    Alcotest.(check bool) "sim stats match offline" true
      (String.equal expected stats)
  | _ -> Alcotest.fail "expected a Simmed reply"

let test_stats_and_errors () =
  with_server @@ fun socket ->
  (match Client.request ~socket Proto.Stats with
  | Proto.Stats_reply _ -> ()
  | _ -> Alcotest.fail "expected a Stats reply");
  (match Client.request ~socket (adapt_req "no-such-workload") with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "unknown workload is a server error" "server" pass
  | _ -> Alcotest.fail "expected an error for an unknown workload");
  match
    Client.request ~socket
      (Proto.Adapt
         { prog = Proto.Source "int main( {"; scale; pipeline = "inorder";
           tenant = Proto.default_tenant })
  with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "bad source is a frontend error" "frontend" pass
  | _ -> Alcotest.fail "expected an error for unparsable source"

(* ---- chaos clients ---- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let test_malformed_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* A well-framed payload of garbage: decoding must fail structurally. *)
  Proto.write_frame fd "this is not a request";
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply _ -> ()
    | _ -> Alcotest.fail "expected an error reply to garbage")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  (* The daemon survived. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_oversized_frame () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* Only the 4-byte header, declaring an absurd length. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (Proto.default_max_frame + 1));
  let n = Unix.write_substring fd (Buffer.contents b) 0 4 in
  Alcotest.(check int) "header sent" 4 n;
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; _ } ->
      Alcotest.(check string) "oversized frame is a proto error" "proto" pass
    | _ -> Alcotest.fail "expected an error reply to an oversized frame")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_hostile_length_field () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* A well-framed Adapt request whose workload-name length is near
     max_int: the bounds check must fail structurally, not overflow into
     a crash that kills the daemon. *)
  let b = Store.Bin.writer () in
  Store.Bin.w_str b "SSPQ";
  Store.Bin.w_u8 b Proto.proto_version;
  Store.Bin.w_u8 b 1 (* Adapt *);
  Store.Bin.w_u8 b 0 (* Workload *);
  Store.Bin.w_int b (max_int - 4);
  Proto.write_frame fd (Store.Bin.contents b);
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; _ } ->
      Alcotest.(check string) "hostile length is a store error" "store" pass
    | _ -> Alcotest.fail "expected an error reply to a hostile length")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_non_draining_peer () =
  with_server @@ fun socket ->
  (* Pipeline many adapt requests and never read a byte: the replies
     overrun the socket buffer, and must park in the server's per-conn
     output buffer instead of wedging the select loop. *)
  let stalled = raw_connect socket in
  let req = Proto.frame (Proto.encode_request (adapt_req "em3d")) in
  for _ = 1 to 40 do
    ignore (Unix.write_substring stalled req 0 (String.length req))
  done;
  (* Other clients must still be served while the stalled peer sits on
     its unread replies. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "mst")) in
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "mst")) in
  Unix.close stalled;
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_mid_request_disconnect () =
  with_server @@ fun socket ->
  let fd = raw_connect socket in
  (* Declare 100 payload bytes, deliver 10, vanish. *)
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 100l;
  Buffer.add_string b "partialpay";
  ignore (Unix.write_substring fd (Buffer.contents b) 0 (Buffer.length b));
  Unix.close fd;
  (* The daemon shrugs and keeps serving. *)
  let _, _, _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  ()

let test_partial_frame_times_out () =
  with_server ~timeout_s:0.2 @@ fun socket ->
  let fd = raw_connect socket in
  let b = Buffer.create 16 in
  Buffer.add_int32_be b 100l;
  Buffer.add_string b "stalled";
  ignore (Unix.write_substring fd (Buffer.contents b) 0 (Buffer.length b));
  (* Don't finish the frame; the server's sweep must reply with a
     structured timeout (its select tick is 1s). *)
  (match Proto.read_frame fd with
  | Some payload -> (
    match Proto.decode_response payload with
    | Proto.Error_reply { pass; what; _ } ->
      Alcotest.(check string) "timeout is a server error" "server" pass;
      Alcotest.(check bool) "mentions the timeout" true
        (String.length what > 0)
    | _ -> Alcotest.fail "expected a timeout error reply")
  | None -> Alcotest.fail "server closed without replying");
  Unix.close fd

let test_concurrent_clients () =
  with_server ~jobs:2 @@ fun socket ->
  let results = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let name = if i mod 2 = 0 then "em3d" else "mst" in
            results.(i) <- Some (Client.request ~socket (adapt_req name)))
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Proto.Adapted _) -> ()
      | Some (Proto.Error_reply { pass; what; _ }) ->
        Alcotest.fail
          (Printf.sprintf "client %d got server error [%s]: %s" i pass what)
      | _ -> Alcotest.fail (Printf.sprintf "client %d got no reply" i))
    results

(* ---- admission control ---- *)

module Admission = Ssp_server.Admission

let test_drr_fairness () =
  (* A hot tenant with 100 queued requests must not starve a light one:
     deficit round-robin alternates, so a round of 6 takes 3 from each. *)
  let adm = Admission.create () in
  for i = 1 to 100 do
    Admission.enqueue adm ~tenant:"hot" (Printf.sprintf "hot-%d" i)
  done;
  for i = 1 to 3 do
    Admission.enqueue adm ~tenant:"light" (Printf.sprintf "light-%d" i)
  done;
  let round = Admission.select adm ~max:6 in
  let count t = List.length (List.filter (fun (t', _) -> t' = t) round) in
  Alcotest.(check int) "round size" 6 (List.length round);
  Alcotest.(check int) "hot tenant share" 3 (count "hot");
  Alcotest.(check int) "light tenant share" 3 (count "light");
  Alcotest.(check int) "backlog accounts the round" 97 (Admission.backlog adm);
  (* The light tenant drains; the hot one keeps the whole next round. *)
  let round2 = Admission.select adm ~max:4 in
  Alcotest.(check int) "drained tenant leaves the rotation" 4
    (List.length (List.filter (fun (t, _) -> t = "hot") round2))

let test_drr_order_within_tenant () =
  let adm = Admission.create () in
  List.iter (fun x -> Admission.enqueue adm ~tenant:"t" x) [ "a"; "b"; "c" ];
  Alcotest.(check (list string))
    "FIFO within a tenant" [ "a"; "b"; "c" ]
    (List.map snd (Admission.select adm ~max:10))

let test_saturation_busy_reply () =
  (* With a backlog bound of 2, pipelining many requests on one
     connection must produce at least one Busy_reply — and every
     non-busy reply must still carry the right bytes. *)
  with_server ~jobs:1 ~max_batch:1 ~max_queue:2 @@ fun socket ->
  let exp_report, exp_asm = offline_adapt "em3d" in
  let fd = raw_connect socket in
  let req = Proto.frame (Proto.encode_request (adapt_req "em3d")) in
  let n = 10 in
  for _ = 1 to n do
    ignore (Unix.write_substring fd req 0 (String.length req))
  done;
  let busy = ref 0 and served = ref 0 in
  for _ = 1 to n do
    match Proto.read_frame fd with
    | None -> Alcotest.fail "server closed mid-pipeline"
    | Some payload -> (
      match Proto.decode_response payload with
      | Proto.Busy_reply { retry_after_s } ->
        incr busy;
        Alcotest.(check bool) "retry-after hint is positive" true
          (retry_after_s > 0.)
      | Proto.Adapted { report; asm; cache = _ } ->
        incr served;
        Alcotest.(check bool) "served bytes identical under pressure" true
          (String.equal exp_report report && String.equal exp_asm asm)
      | _ -> Alcotest.fail "unexpected reply under saturation")
  done;
  Unix.close fd;
  Alcotest.(check int) "every request answered" n (!busy + !served);
  Alcotest.(check bool) "saturation produced rejections" true (!busy > 0);
  Alcotest.(check bool) "some requests were still served" true (!served > 0)

let test_reject_all_when_queue_zero () =
  with_server ~max_queue:0 @@ fun socket ->
  match Client.request ~socket (adapt_req "em3d") with
  | Proto.Busy_reply _ -> ()
  | _ -> Alcotest.fail "max_queue=0 must reject all work"

(* ---- v3 trace plane + snapshot stats plane ---- *)

module T = Ssp_telemetry.Telemetry
module Snapshot = Ssp_server.Snapshot
module Bin = Store.Bin
module Fb = Ssp_feedback.Feedback

(* Telemetry is process-global; scope it tightly so the other suites in
   this binary keep seeing it off. *)
let with_telemetry f () =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

let test_proto_v2_compat () =
  (* Hand-built v2 payloads (no trace/hop envelope between the version
     byte and the tag) must still decode: old peers interoperate. *)
  let b = Bin.writer () in
  Bin.w_str b "SSPQ";
  Bin.w_u8 b 2;
  Bin.w_u8 b 3;
  let req, trace = Proto.decode_request_traced (Bin.contents b) in
  (match req with
  | Proto.Stats -> ()
  | _ -> Alcotest.fail "v2 Stats body misdecoded");
  Alcotest.(check bool) "v2 requests are untraced" true (trace = None);
  let b = Bin.writer () in
  Bin.w_str b "SSPR";
  Bin.w_u8 b 2;
  Bin.w_u8 b 4;
  let resp, hops = Proto.decode_response_hops (Bin.contents b) in
  (match resp with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "v2 Ok body misdecoded");
  Alcotest.(check int) "v2 replies carry no hops" 0 (List.length hops);
  (* v1 is below the floor *)
  let b = Bin.writer () in
  Bin.w_str b "SSPQ";
  Bin.w_u8 b 1;
  Bin.w_u8 b 3;
  (match Proto.decode_request_traced (Bin.contents b) with
  | _ -> Alcotest.fail "v1 accepted"
  | exception Ssp_ir.Error.Error _ -> ());
  (* v3 roundtrip carries the context and the breakdown *)
  let ctx = { Proto.trace_id = "cafe01"; span_id = 7 } in
  let req', trace' =
    Proto.decode_request_traced (Proto.encode_request ~trace:ctx (adapt_req "em3d"))
  in
  (match req' with
  | Proto.Adapt { tenant; _ } ->
    Alcotest.(check string) "body survives the envelope" Proto.default_tenant
      tenant
  | _ -> Alcotest.fail "traced request body misdecoded");
  (match trace' with
  | Some c ->
    Alcotest.(check string) "trace id" "cafe01" c.Proto.trace_id;
    Alcotest.(check int) "span id" 7 c.Proto.span_id
  | None -> Alcotest.fail "trace context dropped");
  Alcotest.(check bool) "untraced v3 request decodes as None" true
    (snd (Proto.decode_request_traced (Proto.encode_request Proto.Stats)) = None);
  let hops =
    [
      { Proto.hop_node = "s1"; hop_stage = "queue"; hop_ms = 1.25 };
      { Proto.hop_node = "s1"; hop_stage = "compute"; hop_ms = 40.5 };
    ]
  in
  let resp', hops' =
    Proto.decode_response_hops (Proto.encode_response ~hops Proto.Ok_reply)
  in
  (match resp' with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "response body misdecoded");
  Alcotest.(check int) "hops round-trip" 2 (List.length hops');
  List.iter2
    (fun a b ->
      Alcotest.(check string) "node" a.Proto.hop_node b.Proto.hop_node;
      Alcotest.(check string) "stage" a.Proto.hop_stage b.Proto.hop_stage;
      Alcotest.(check (float 1e-9)) "ms" a.Proto.hop_ms b.Proto.hop_ms)
    hops hops'

(* A v4 peer (deadline/artifact envelope, no Feedback tag) must keep
   working against a v5 decoder: the v5 bump added a request kind, not
   an envelope change. *)
let test_proto_v4_compat () =
  let b = Bin.writer () in
  Bin.w_str b "SSPQ";
  Bin.w_u8 b 4;
  (* v4 envelope: trace, deadline, artifact ask *)
  Bin.w_str b "";
  Bin.w_int b 0;
  Bin.w_float b 125.;
  Bin.w_u8 b Proto.artifacts_on_miss;
  Bin.w_u8 b 3;
  (* Stats *)
  let req, env = Proto.decode_request_env (Bin.contents b) in
  (match req with
  | Proto.Stats -> ()
  | _ -> Alcotest.fail "v4 Stats body misdecoded");
  Alcotest.(check (float 1e-9)) "v4 deadline survives" 125. env.Proto.re_deadline_ms;
  Alcotest.(check int) "v4 artifact ask survives" Proto.artifacts_on_miss
    env.Proto.re_artifacts;
  let b = Bin.writer () in
  Bin.w_str b "SSPR";
  Bin.w_u8 b 4;
  Bin.w_int b 0;
  (* no hops *)
  Bin.w_int b 0;
  (* no artifacts *)
  Bin.w_u8 b 4;
  (* Ok *)
  (match Proto.decode_response_hops (Bin.contents b) with
  | Proto.Ok_reply, [] -> ()
  | _ -> Alcotest.fail "v4 Ok body misdecoded");
  (* The new v5 request round-trips with its workload identity intact
     (the router hashes it for shard affinity). *)
  let req =
    Proto.Feedback
      {
        prog = Proto.Workload "em3d";
        scale = 3;
        pipeline = "inorder";
        tenant = "fleet";
        blob = "sealed-bytes";
      }
  in
  match Proto.decode_request_env (Proto.encode_request req) with
  | Proto.Feedback { prog = Proto.Workload w; scale; pipeline; tenant; blob }, _
    ->
    Alcotest.(check string) "workload" "em3d" w;
    Alcotest.(check int) "scale" 3 scale;
    Alcotest.(check string) "pipeline" "inorder" pipeline;
    Alcotest.(check string) "tenant" "fleet" tenant;
    Alcotest.(check string) "blob" "sealed-bytes" blob
  | _ -> Alcotest.fail "Feedback request misdecoded"

let feedback_req blob =
  Proto.Feedback
    {
      prog = Proto.Workload "em3d";
      scale;
      pipeline = "inorder";
      tenant = Proto.default_tenant;
      blob;
    }

let synthetic_report i =
  {
    Fb.fr_prog = Fb.Named "em3d";
    fr_scale = scale;
    fr_pipeline = "inorder";
    fr_version = 0;
    fr_cycles = 1000 + i;
    fr_loads =
      [
        {
          Fb.fl_load = Ssp_ir.Iref.make "walk" 0 0;
          fl_issued = 0;
          fl_useful = 0;
          fl_late = 0;
          fl_early_evicted = 0;
          fl_redundant = 1000;
          fl_dropped = 0;
          fl_unused = 0;
          fl_demand_accesses = 1000;
          fl_demand_hits = 1000;
          fl_lead_hist = T.empty_hist_summary ();
        };
      ];
  }

(* An upload whose blob is not a sealed feedback report is a structured
   error — never a crash — and the daemon keeps serving. *)
let test_feedback_bad_blob () =
  with_server @@ fun socket ->
  (match Client.request ~socket (feedback_req "garbage") with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "unsealed blob rejected by pass" "feedback" pass
  | _ -> Alcotest.fail "garbage blob must be a structured error");
  (* A valid blob of the wrong kind (an aggregate) is rejected too. *)
  (match
     Client.request ~socket
       (feedback_req (Fb.encode_aggregate Fb.empty_aggregate))
   with
  | Proto.Error_reply { pass; what; _ } ->
    Alcotest.(check string) "wrong kind rejected by pass" "feedback" pass;
    Alcotest.(check bool)
      "error names the expected kind" true
      (String.length what > 0)
  | _ -> Alcotest.fail "wrong-kind blob must be a structured error");
  match Client.request ~socket Proto.Ping with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "daemon must survive hostile uploads"

let test_traced_hops () =
  (* A traced request comes back with a per-hop latency breakdown even
     when the shard's own telemetry is off; untraced requests don't pay
     for one. *)
  with_server @@ fun socket ->
  let addr = Client.Unix_sock socket in
  let ctx = { Proto.trace_id = "deadbeef"; span_id = 1 } in
  let resp, hops = Client.request_hops ~trace:ctx addr (adapt_req "em3d") in
  ignore (expect_adapted resp);
  let stage s = List.exists (fun h -> String.equal h.Proto.hop_stage s) hops in
  List.iter
    (fun s -> Alcotest.(check bool) ("hop " ^ s) true (stage s))
    [ "queue"; "store.lookup"; "compute"; "serialize" ];
  List.iter
    (fun h ->
      Alcotest.(check bool) "hop duration non-negative" true (h.Proto.hop_ms >= 0.);
      Alcotest.(check bool) "hop node named" true
        (String.length h.Proto.hop_node > 0))
    hops;
  let _, nohops = Client.request_hops addr (adapt_req "em3d") in
  Alcotest.(check int) "untraced: no hops" 0 (List.length nohops)

(* With the shard's telemetry on, the per-pass span tree rides into the
   breakdown as nested span:* hops and the trace id lands in the shard's
   counters (the CI smoke greps for it on both sides of the router). *)
let test_traced_hops_spans =
  with_telemetry @@ fun () ->
  with_server @@ fun socket ->
  let addr = Client.Unix_sock socket in
  let ctx = { Proto.trace_id = "feedf00d"; span_id = 1 } in
  let resp, hops = Client.request_hops ~trace:ctx addr (adapt_req "em3d") in
  ignore (expect_adapted resp);
  Alcotest.(check bool) "nested pass spans ride along" true
    (List.exists
       (fun h ->
         String.length h.Proto.hop_stage > 5
         && String.equal (String.sub h.Proto.hop_stage 0 5) "span:")
       hops);
  Alcotest.(check int) "trace id counted shard-side" 1
    (List.assoc "trace.feedf00d" (T.report ()).T.r_counters)

let fetch_snapshot socket =
  match
    Client.request ~socket Proto.Stats_snapshot
  with
  | Proto.Snapshot_reply { snapshot } -> Snapshot.decode snapshot
  | _ -> Alcotest.fail "expected a Snapshot_reply"

let counter snap name =
  Option.value ~default:0 (List.assoc_opt name snap.Snapshot.counters)

(* Satellite: the per-tenant admission counters are visible through the
   stats plane and line up with the Busy replies the client saw. *)
(* The daemon-side loop: three distinct reports cross the confidence
   floor, the tuner publishes a version, and the liveness gauges reach
   the stats plane. *)
let test_feedback_upload_and_tune =
  with_telemetry @@ fun () ->
  with_server ~tune:true @@ fun socket ->
  List.iter
    (fun i ->
      match
        Client.request ~socket
          (feedback_req (Fb.encode_report (synthetic_report i)))
      with
      | Proto.Ok_reply -> ()
      | Proto.Error_reply { pass; what; _ } ->
        Alcotest.fail (Printf.sprintf "upload failed [%s]: %s" pass what)
      | _ -> Alcotest.fail "expected Ok for a report upload")
    [ 0; 1; 2 ];
  let snap = fetch_snapshot socket in
  Alcotest.(check int) "uploads counted" 3
    (counter snap "server.feedback.reports");
  let gauge name =
    match List.assoc_opt name snap.Snapshot.gauges with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing from the snapshot" name
  in
  Alcotest.(check bool) "a tuning round ran" true (gauge "feedback.rounds" >= 1.);
  Alcotest.(check bool)
    "a tuned version was published" true
    (gauge "feedback.version_max" >= 1.);
  Alcotest.(check bool)
    "report liveness age is fresh" true
    (let age = gauge "feedback.last_report_age_s" in
     age >= 0. && age < 60.);
  (* Serving still works on the tuned store (the synthetic overrides
     name no real load, so the served artifact equals the offline one —
     published under the bumped version key). *)
  let _, asm = offline_adapt "em3d" in
  let _, asm', _ = expect_adapted (Client.request ~socket (adapt_req "em3d")) in
  Alcotest.(check string) "tuned serving stays byte-identical" asm asm'

let test_snapshot_admission_counters =
  with_telemetry @@ fun () ->
  with_server ~max_queue:0 @@ fun socket ->
  let busy = ref 0 in
  for _ = 1 to 5 do
    match Client.request ~socket (adapt_req ~tenant:"hog" "em3d") with
    | Proto.Busy_reply { retry_after_s } ->
      incr busy;
      Alcotest.(check bool) "retry-after positive" true (retry_after_s > 0.)
    | _ -> Alcotest.fail "max_queue=0 must reject"
  done;
  let snap = fetch_snapshot socket in
  Alcotest.(check int) "server.rejected matches Busy replies" !busy
    (counter snap "server.rejected");
  Alcotest.(check int) "per-tenant rejected matches" !busy
    (counter snap "server.tenant.hog.rejected");
  Alcotest.(check int) "nothing served" 0 (counter snap "server.tenant.hog.served");
  (* the snapshot codec round-trips what the server sent *)
  let again = Snapshot.decode (Snapshot.encode snap) in
  Alcotest.(check bool) "snapshot codec round-trips" true (again = snap)

(* Satellite: cache pressure is observable end to end — force LRU
   evictions with a tiny cache and require the store.evict counter to
   reach the snapshot, agreeing with the handle's own count. *)
let test_snapshot_eviction_counter =
  with_telemetry @@ fun () ->
  with_server ~cache_max_bytes:2000 @@ fun socket ->
  List.iter
    (fun name -> ignore (expect_adapted (Client.request ~socket (adapt_req name))))
    [ "em3d"; "mst"; "health" ];
  let snap = fetch_snapshot socket in
  let evicted = counter snap "store.evict" in
  Alcotest.(check bool) "tiny cache forced evictions" true (evicted > 0);
  (match List.assoc_opt "store.evictions" snap.Snapshot.gauges with
  | Some g -> Alcotest.(check int) "gauge agrees with counter" evicted
      (int_of_float g)
  | None -> Alcotest.fail "store.evictions gauge missing");
  Alcotest.(check bool) "service-time histogram populated" true
    (match List.assoc_opt "server.service_ms" snap.Snapshot.hists with
    | Some h -> h.T.hs_n >= 3
    | None -> false);
  Alcotest.(check bool) "queue depth gauge present" true
    (List.mem_assoc "server.queue_depth" snap.Snapshot.gauges)

(* ---- v4: end-to-end deadlines + the replica write plane ---- *)

(* A request whose budget arrives already spent must be shed at
   admission with a structured reply — and, the acceptance criterion,
   never reach compute: the shed counter shows up in the snapshot and
   the batch/served counters stay at zero. *)
let test_deadline_shed_at_admission =
  with_telemetry @@ fun () ->
  with_server @@ fun socket ->
  let addr = Client.Unix_sock socket in
  (match
     Client.request_env ~deadline_ms:(-5.) addr (adapt_req ~tenant:"late" "em3d")
   with
  | Proto.Deadline_exceeded { stage; budget_ms; elapsed_ms = _ }, _, _ ->
    Alcotest.(check string) "shed at admission" "admission" stage;
    Alcotest.(check bool) "budget echoed as stamped" true (budget_ms < 0.)
  | _ -> Alcotest.fail "expected a Deadline_exceeded reply");
  let snap = fetch_snapshot socket in
  Alcotest.(check int) "shed counted through the snapshot plane" 1
    (counter snap "server.deadline.shed_admission");
  Alcotest.(check int) "per-tenant shed counted" 1
    (counter snap "server.tenant.late.deadline_shed");
  Alcotest.(check int) "the shed request never reached compute" 0
    (counter snap "server.batches");
  Alcotest.(check int) "nothing served" 0
    (counter snap "server.tenant.late.served")

let test_deadline_generous_serves () =
  (* A live budget changes nothing about the bytes. *)
  with_server @@ fun socket ->
  let exp_report, exp_asm = offline_adapt "em3d" in
  let resp, _, _ =
    Client.request_env ~deadline_ms:60_000.
      (Client.Unix_sock socket) (adapt_req "em3d")
  in
  let report, asm, _ = expect_adapted resp in
  Alcotest.(check bool) "deadline-stamped reply byte-identical" true
    (String.equal exp_report report && String.equal exp_asm asm)

let test_ping () =
  with_server ~with_cache:false @@ fun socket ->
  match Client.request ~socket Proto.Ping with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "expected Ok_reply to Ping"

(* The artifact ask: a cold adapt with [artifacts_on_miss] returns the
   cache entries the reply was built from (the router's write-through
   source); a warm one returns none (nothing new to replicate); a warm
   [artifacts_always] returns them anyway (the read-repair source). *)
let test_artifact_attachment () =
  with_server @@ fun socket ->
  let addr = Client.Unix_sock socket in
  let ask a = Client.request_env ~artifacts:a addr (adapt_req "em3d") in
  let resp, _, cold_arts = ask Proto.artifacts_on_miss in
  let _, _, c1 = expect_adapted resp in
  Alcotest.(check string) "cold misses" "miss" c1;
  Alcotest.(check int) "cold miss attaches profile + adapted" 2
    (List.length cold_arts);
  List.iter
    (fun (key, blob) ->
      Alcotest.(check bool) "artifact key is a cache digest" true
        (String.length key = 32);
      Alcotest.(check bool) "artifact blob is a sealed envelope" true
        (Store.blob_ok blob))
    cold_arts;
  let resp, _, warm_arts = ask Proto.artifacts_on_miss in
  let _, _, c2 = expect_adapted resp in
  Alcotest.(check string) "warm hits" "hit" c2;
  Alcotest.(check int) "warm on_miss attaches nothing" 0
    (List.length warm_arts);
  let resp, _, repair_arts = ask Proto.artifacts_always in
  ignore (expect_adapted resp);
  Alcotest.(check int) "warm always attaches for read-repair" 2
    (List.length repair_arts);
  (* And the write side: replaying an attached artifact through
     Put_blob is accepted (idempotent replica write)... *)
  (match
     Client.request ~socket
       (Proto.Put_blob
          { key = fst (List.hd repair_arts); blob = snd (List.hd repair_arts) })
   with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "valid replica write rejected");
  (* ...while a hostile key (would escape the cache directory) and a
     garbage blob (fails the sealed-envelope check) are rejected before
     touching the store. *)
  (match
     Client.request ~socket
       (Proto.Put_blob { key = "../../etc/passwd"; blob = snd (List.hd repair_arts) })
   with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "hostile key is a store error" "store" pass
  | _ -> Alcotest.fail "hostile replica key accepted");
  match
    Client.request ~socket
      (Proto.Put_blob { key = String.make 32 'f'; blob = "not a sealed blob" })
  with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "garbage blob is a store error" "store" pass
  | _ -> Alcotest.fail "garbage replica blob accepted"

let test_put_blob_without_cache () =
  with_server ~with_cache:false @@ fun socket ->
  match
    Client.request ~socket
      (Proto.Put_blob { key = String.make 32 'a'; blob = "x" })
  with
  | Proto.Error_reply { pass; _ } ->
    Alcotest.(check string) "cacheless replica write is a server error"
      "server" pass
  | _ -> Alcotest.fail "expected an error from a cacheless shard"

let test_shutdown () =
  let dir = Filename.temp_dir "sspc_server_test" "" in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    {
      (Server.default_config ~socket) with
      Server.cache = None;
      jobs = 1;
    }
  in
  let th = Thread.create Server.serve cfg in
  wait_for_socket socket;
  (match Client.request ~socket Proto.Shutdown with
  | Proto.Ok_reply -> ()
  | _ -> Alcotest.fail "expected shutdown to be acknowledged");
  Thread.join th;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let suite =
  [
    Alcotest.test_case "adapt: cold/warm, byte-identical to offline" `Quick
      test_adapt_cold_warm_identical;
    Alcotest.test_case "adapt without a cache" `Quick test_no_cache_serves_off;
    Alcotest.test_case "sim matches offline" `Quick test_sim_matches_offline;
    Alcotest.test_case "stats + structured request errors" `Quick
      test_stats_and_errors;
    Alcotest.test_case "chaos: malformed frame" `Quick test_malformed_frame;
    Alcotest.test_case "chaos: oversized frame" `Quick test_oversized_frame;
    Alcotest.test_case "chaos: hostile length field" `Quick
      test_hostile_length_field;
    Alcotest.test_case "chaos: non-draining peer" `Quick
      test_non_draining_peer;
    Alcotest.test_case "chaos: mid-request disconnect" `Quick
      test_mid_request_disconnect;
    Alcotest.test_case "chaos: stalled partial frame times out" `Quick
      test_partial_frame_times_out;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "admission: DRR fairness across tenants" `Quick
      test_drr_fairness;
    Alcotest.test_case "admission: FIFO within a tenant" `Quick
      test_drr_order_within_tenant;
    Alcotest.test_case "admission: saturation gets Busy, service stays exact"
      `Quick test_saturation_busy_reply;
    Alcotest.test_case "admission: max_queue=0 rejects all work" `Quick
      test_reject_all_when_queue_zero;
    Alcotest.test_case "proto: v2 compat + v3 trace roundtrip" `Quick
      test_proto_v2_compat;
    Alcotest.test_case "proto: v4 compat under v5 + Feedback roundtrip" `Quick
      test_proto_v4_compat;
    Alcotest.test_case "feedback: hostile blobs get structured errors" `Quick
      test_feedback_bad_blob;
    Alcotest.test_case "feedback: upload, aggregate, daemon tuning round"
      `Quick test_feedback_upload_and_tune;
    Alcotest.test_case "trace: per-hop breakdown" `Quick test_traced_hops;
    Alcotest.test_case "trace: span hops + trace counter" `Quick
      test_traced_hops_spans;
    Alcotest.test_case "snapshot: admission counters line up" `Quick
      test_snapshot_admission_counters;
    Alcotest.test_case "snapshot: eviction counter reaches the plane" `Quick
      test_snapshot_eviction_counter;
    Alcotest.test_case "deadline: expired budget shed at admission" `Quick
      test_deadline_shed_at_admission;
    Alcotest.test_case "deadline: live budget serves identically" `Quick
      test_deadline_generous_serves;
    Alcotest.test_case "ping answers ok" `Quick test_ping;
    Alcotest.test_case "artifacts: attach, replay, reject hostile" `Quick
      test_artifact_attachment;
    Alcotest.test_case "replica write without a cache" `Quick
      test_put_blob_without_cache;
    Alcotest.test_case "clean shutdown" `Quick test_shutdown;
  ]
