(* The artifact store: canonical round-trips for every artifact kind on
   every suite workload, rejection of truncated/bit-flipped blobs, and
   the cache's corruption-is-a-miss / LRU behaviour. *)

module Store = Ssp_store.Store
module Workload = Ssp_workloads.Workload
module Suite = Ssp_workloads.Suite

let config = Ssp_machine.Config.in_order

let program_of w = Workload.program w ~scale:Suite.test_scale

let raises_store_error f =
  match f () with
  | _ -> false
  | exception Ssp_ir.Error.Error _ -> true

(* encode -> decode -> encode must be byte-identical: the property the
   content-addressed keys rely on. *)
let roundtrip ~what encode decode blob =
  let decoded = decode blob in
  Alcotest.(check bool)
    (what ^ ": re-encoding is byte-identical")
    true
    (String.equal blob (encode decoded))

let test_program_roundtrip (w : Workload.t) () =
  let prog = program_of w in
  let blob = Store.encode_program prog in
  roundtrip ~what:"program" Store.encode_program Store.decode_program blob;
  (* The decoded program is the same program: same functional outputs. *)
  let a = Ssp_sim.Funcsim.run prog in
  let b = Ssp_sim.Funcsim.run (Store.decode_program blob) in
  Alcotest.(check (list int64))
    "decoded program computes the same outputs" a.Ssp_sim.Funcsim.outputs
    b.Ssp_sim.Funcsim.outputs

let test_profile_roundtrip (w : Workload.t) () =
  let prog = program_of w in
  let profile = Ssp_profiling.Collect.collect prog in
  let blob = Store.encode_profile profile in
  roundtrip ~what:"profile" Store.encode_profile Store.decode_profile blob

let test_report_and_adapted_roundtrip (w : Workload.t) () =
  let prog = program_of w in
  let profile = Ssp_profiling.Collect.collect prog in
  let result = Ssp.Adapt.run ~config prog profile in
  let rblob = Store.encode_report result.Ssp.Adapt.report in
  roundtrip ~what:"report" Store.encode_report Store.decode_report rblob;
  let adapted =
    {
      Store.prog = result.Ssp.Adapt.prog;
      report = result.Ssp.Adapt.report;
      prefetch_map = result.Ssp.Adapt.prefetch_map;
    }
  in
  let ablob = Store.encode_adapted adapted in
  roundtrip ~what:"adapted" Store.encode_adapted Store.decode_adapted ablob;
  let back = Store.decode_adapted ablob in
  Alcotest.(check bool)
    "adapted program text survives" true
    (String.equal
       (Ssp_ir.Asm.to_string result.Ssp.Adapt.prog)
       (Ssp_ir.Asm.to_string back.Store.prog))

let test_rejects_corruption () =
  let prog = program_of (Suite.find "em3d") in
  let profile = Ssp_profiling.Collect.collect prog in
  List.iter
    (fun (what, blob) ->
      let len = String.length blob in
      (* Truncation at the magic, inside the header, mid-payload, and
         one byte short of complete. *)
      List.iter
        (fun cut ->
          Alcotest.(check bool)
            (Printf.sprintf "%s truncated at %d rejected" what cut)
            true
            (raises_store_error (fun () ->
                 Store.decode_program (String.sub blob 0 cut))))
        [ 0; 3; 7; len / 2; len - 1 ];
      (* A single flipped bit anywhere breaks either a header check or
         the content hash. *)
      List.iter
        (fun pos ->
          let b = Bytes.of_string blob in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
          let flipped = Bytes.to_string b in
          Alcotest.(check bool)
            (Printf.sprintf "%s bit-flipped at %d rejected" what pos)
            true
            (raises_store_error (fun () ->
                 ignore (Store.decode_program flipped);
                 ignore (Store.decode_profile flipped))))
        [ 0; 5; 10; len / 2; len - 3 ])
    [
      ("program", Store.encode_program prog);
      ("profile", Store.encode_profile profile);
    ];
  (* Kind confusion: a valid profile blob is not a program. *)
  Alcotest.(check bool)
    "wrong artifact kind rejected" true
    (raises_store_error (fun () ->
         Store.decode_program (Store.encode_profile profile)))

let with_temp_cache ?max_bytes f =
  let dir = Filename.temp_dir "sspc_store_test" "" in
  f (Store.Cache.open_dir ?max_bytes dir)

let status_string = function `Hit -> "hit" | `Miss -> "miss" | `Off -> "off"

(* Length fields come off the wire: a value near [max_int] must fail
   the bounds check cleanly (structured store error), not overflow it
   into a String.sub crash; a count larger than the remaining payload
   must be rejected before anything is allocated for it. *)
let test_hostile_lengths () =
  let payload_with_int n rest =
    let b = Store.Bin.writer () in
    Store.Bin.w_int b n;
    Store.Bin.contents b ^ rest
  in
  List.iter
    (fun n ->
      let r = Store.Bin.reader (payload_with_int n "abc") in
      Alcotest.(check bool)
        (Printf.sprintf "r_str with length %d rejected" n)
        true
        (raises_store_error (fun () -> Store.Bin.r_str r)))
    [ max_int; max_int - 4; min_int; -1; 100 ];
  let r = Store.Bin.reader (payload_with_int 3 "abc") in
  Alcotest.(check string)
    "an honest length still reads" "abc" (Store.Bin.r_str r)

let test_run_cached_hit_identical () =
  with_temp_cache @@ fun cache ->
  let prog = program_of (Suite.find "em3d") in
  let profile = Ssp_profiling.Collect.collect prog in
  let clean = Ssp.Adapt.run ~config prog profile in
  let cold, s1 = Store.run_cached ~cache ~config prog profile in
  let warm, s2 = Store.run_cached ~cache ~config prog profile in
  Alcotest.(check string) "first lookup misses" "miss" (status_string s1);
  Alcotest.(check string) "second lookup hits" "hit" (status_string s2);
  List.iter
    (fun (what, r) ->
      Alcotest.(check bool)
        (what ^ " adapted program byte-identical to the uncached run")
        true
        (String.equal
           (Ssp_ir.Asm.to_string clean.Ssp.Adapt.prog)
           (Ssp_ir.Asm.to_string r.Ssp.Adapt.prog));
      Alcotest.(check bool)
        (what ^ " report identical")
        true
        (String.equal
           (Store.encode_report clean.Ssp.Adapt.report)
           (Store.encode_report r.Ssp.Adapt.report)))
    [ ("cold", cold); ("warm", warm) ];
  Alcotest.(check bool)
    "hit re-identifies the delinquent loads" true
    (List.length warm.Ssp.Adapt.delinquent.Ssp.Delinquent.loads
    = List.length clean.Ssp.Adapt.delinquent.Ssp.Delinquent.loads)

let test_corrupt_entry_recomputes () =
  with_temp_cache @@ fun cache ->
  let prog = program_of (Suite.find "em3d") in
  let profile = Ssp_profiling.Collect.collect prog in
  let clean, _ = Store.run_cached ~cache ~config prog profile in
  Alcotest.(check int) "one entry cached" 1 (Store.Cache.entry_count cache);
  (* Scribble over the middle of the published blob. *)
  let dir = Store.Cache.dir cache in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".blob" then begin
        let path = Filename.concat dir name in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        ignore (Unix.lseek fd 40 Unix.SEEK_SET);
        ignore (Unix.write_substring fd "corrupted!" 0 10);
        Unix.close fd
      end)
    (Sys.readdir dir);
  let recomputed, status = Store.run_cached ~cache ~config prog profile in
  Alcotest.(check string) "corrupt entry is a miss" "miss"
    (status_string status);
  Alcotest.(check bool)
    "recomputed result identical to the clean run" true
    (String.equal
       (Ssp_ir.Asm.to_string clean.Ssp.Adapt.prog)
       (Ssp_ir.Asm.to_string recomputed.Ssp.Adapt.prog));
  let _, again = Store.run_cached ~cache ~config prog profile in
  Alcotest.(check string) "republished entry hits again" "hit"
    (status_string again)

let test_cached_profile () =
  with_temp_cache @@ fun cache ->
  let prog = program_of (Suite.find "mst") in
  let direct = Ssp_profiling.Collect.collect prog in
  let cold, s1 = Store.cached_profile ~cache ~config prog in
  let warm, s2 = Store.cached_profile ~cache ~config prog in
  Alcotest.(check string) "profile cold miss" "miss" (status_string s1);
  Alcotest.(check string) "profile warm hit" "hit" (status_string s2);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "cached profile identical to a fresh collection" true
        (String.equal (Store.encode_profile direct) (Store.encode_profile p)))
    [ cold; warm ];
  let off, s3 = Store.cached_profile ~config prog in
  Alcotest.(check string) "no cache means off" "off" (status_string s3);
  Alcotest.(check bool) "off path still collects" true
    (String.equal (Store.encode_profile direct) (Store.encode_profile off))

let test_lru_eviction () =
  let blob n = String.make 1000 (Char.chr (Char.code 'a' + n)) in
  with_temp_cache ~max_bytes:2500 @@ fun cache ->
  for i = 0 to 4 do
    Store.Cache.put cache (Printf.sprintf "%032x" i) (blob i);
    (* mtime granularity: make the LRU order unambiguous *)
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool)
    "size capped" true
    (Store.Cache.size_bytes cache <= 2500);
  Alcotest.(check int) "oldest entries evicted" 2
    (Store.Cache.entry_count cache);
  Alcotest.(check bool)
    "most recent entry survives" true
    (Store.Cache.find cache (Printf.sprintf "%032x" 4) <> None);
  Alcotest.(check bool)
    "oldest entry evicted" true
    (Store.Cache.find cache (Printf.sprintf "%032x" 0) = None)

(* ---- crash safety: kill -9 at every step of [put] ---- *)

module F = Ssp_fault.Fault

let tmp_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n ->
         String.length n >= 5 && String.equal (String.sub n 0 5) ".tmp.")

(* A writer dying at [site] mid-[put] must leave the store readable:
   the key is a clean miss (no partial bytes ever visible), the orphan
   tmp is on disk but invisible, the sweep reclaims it, and a retried
   put publishes normally. This is the same guarantee a real kill -9
   gets, because the sites stop the writer exactly where the kernel
   would. *)
let test_crash_during_put site () =
  with_temp_cache @@ fun cache ->
  let dir = Store.Cache.dir cache in
  let key = String.make 32 'a' in
  let prog = program_of (Suite.find "em3d") in
  let blob = Store.encode_program prog in
  F.with_plan (F.make ~seed:7 [ (site, F.spec ~limit:1 1.0) ]) (fun () ->
      Store.Cache.put cache key blob);
  Alcotest.(check bool)
    (site ^ ": crashed put is a clean miss")
    true
    (Store.Cache.find cache key = None);
  (* A concurrent reader racing the corpse sees a miss, never an error
     or partial bytes. *)
  Alcotest.(check bool)
    (site ^ ": get through decode never errors")
    true
    (Store.Cache.get cache key ~decode:Store.decode_program = None);
  Alcotest.(check int)
    (site ^ ": exactly one orphaned tmp left behind")
    1
    (List.length (tmp_files dir));
  Alcotest.(check int)
    (site ^ ": sweep reclaims the orphan")
    1
    (Store.Cache.sweep ~grace_s:0. cache);
  Alcotest.(check int)
    (site ^ ": no tmp survives the sweep")
    0
    (List.length (tmp_files dir));
  (* The writer restarts: the same put now publishes, byte-identical. *)
  Store.Cache.put cache key blob;
  Alcotest.(check bool)
    (site ^ ": retried put publishes the full blob")
    true
    (match Store.Cache.find cache key with
    | Some b -> String.equal b blob
    | None -> false)

(* open_dir's startup sweep: stale orphans (older than the grace) are
   reclaimed, an in-flight writer's young tmp is left alone. *)
let test_startup_sweep () =
  let dir = Filename.temp_dir "sspc_store_test" "" in
  let write name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "orphan";
    close_out oc
  in
  write ".tmp.1.0.stale";
  (let old = Unix.gettimeofday () -. 3600. in
   Unix.utimes (Filename.concat dir ".tmp.1.0.stale") old old);
  write ".tmp.2.0.young";
  let cache = Store.Cache.open_dir dir in
  let left = tmp_files dir in
  Alcotest.(check (list string))
    "startup sweep removes the stale orphan, spares the live writer"
    [ ".tmp.2.0.young" ] left;
  Alcotest.(check int) "explicit zero-grace sweep takes the rest" 1
    (Store.Cache.sweep ~grace_s:0. cache)

let test_fsck () =
  with_temp_cache @@ fun cache ->
  let dir = Store.Cache.dir cache in
  let prog = program_of (Suite.find "em3d") in
  let good1 = Store.encode_program prog in
  let good2 = Store.encode_profile (Ssp_profiling.Collect.collect prog) in
  Store.Cache.put cache (String.make 32 'a') good1;
  Store.Cache.put cache (String.make 32 'b') good2;
  (* A truncated entry (crash between rename and a torn disk, or plain
     bit rot): published under a real name but failing its envelope. *)
  let oc = open_out_bin (Filename.concat dir (String.make 32 'c' ^ ".blob")) in
  output_string oc (String.sub good1 0 (String.length good1 / 2));
  close_out oc;
  let oc = open_out_bin (Filename.concat dir ".tmp.9.9.orphan") in
  output_string oc "dead writer";
  close_out oc;
  let r = Store.Cache.fsck cache in
  Alcotest.(check int) "fsck scanned all entries" 3 r.Store.Cache.scanned;
  Alcotest.(check int) "fsck kept the valid entries" 2 r.Store.Cache.valid;
  Alcotest.(check int) "fsck removed the corrupt entry" 1
    r.Store.Cache.corrupt_removed;
  Alcotest.(check int) "fsck swept the orphan" 1 r.Store.Cache.tmp_removed;
  Alcotest.(check int)
    "fsck accounted the surviving bytes"
    (String.length good1 + String.length good2)
    r.Store.Cache.valid_bytes;
  (* Idempotence: a clean store fscks clean. *)
  let r2 = Store.Cache.fsck cache in
  Alcotest.(check int) "second fsck finds nothing corrupt" 0
    r2.Store.Cache.corrupt_removed;
  Alcotest.(check int) "second fsck finds no orphans" 0
    r2.Store.Cache.tmp_removed;
  Alcotest.(check int) "second fsck still sees both entries" 2
    r2.Store.Cache.valid;
  (* The valid entries still read back whole. *)
  Alcotest.(check bool)
    "valid entry unharmed by fsck" true
    (match Store.Cache.find cache (String.make 32 'a') with
    | Some b -> String.equal b good1
    | None -> false)

let per_workload name f =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" w.Workload.name name)
        `Quick (f w))
    Suite.all

let suite =
  per_workload "program round-trip" test_program_roundtrip
  @ per_workload "profile round-trip" test_profile_roundtrip
  @ per_workload "report+adapted round-trip" test_report_and_adapted_roundtrip
  @ [
      Alcotest.test_case "corruption rejected" `Quick test_rejects_corruption;
      Alcotest.test_case "hostile length fields rejected" `Quick
        test_hostile_lengths;
      Alcotest.test_case "run_cached hit is byte-identical" `Quick
        test_run_cached_hit_identical;
      Alcotest.test_case "corrupt cache entry recomputes" `Quick
        test_corrupt_entry_recomputes;
      Alcotest.test_case "cached_profile" `Quick test_cached_profile;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "crash at tmp open leaves store clean" `Quick
        (test_crash_during_put "store.put.crash_tmp_open");
      Alcotest.test_case "crash mid-write leaves store clean" `Quick
        (test_crash_during_put "store.put.crash_partial_write");
      Alcotest.test_case "crash before rename leaves store clean" `Quick
        (test_crash_during_put "store.put.crash_pre_rename");
      Alcotest.test_case "startup sweep honors the grace period" `Quick
        test_startup_sweep;
      Alcotest.test_case "fsck verifies, GCs, and is idempotent" `Quick
        test_fsck;
    ]
