(* sspc: command-line driver for the SSP post-pass tool chain.

   Subcommands:
     compile    mini-C source -> ISA assembly listing
     run        functional execution (outputs + instruction counts)
     profile    profile a program and list the delinquent loads
     adapt      run the SSP post-pass and show slices/triggers
     sim        cycle simulation (in-order / ooo, with or without SSP)
     explain    pipeline + attributed simulation: per-delinquent-load
                prefetch effectiveness (coverage/accuracy/timeliness)
     stats      run the full pipeline and print the telemetry summary
     chaos      fault-injection campaigns with speculative-safety
                invariance checking (exits 1 on any violation)
     bench      list workloads
     table1     print the machine models

   'adapt', 'sim' and 'stats' take [--trace out.json] to enable the
   telemetry subsystem and dump the structured run report; 'sim' and
   'explain' take [--trace-events out.json] to export a Chrome
   trace-event (Perfetto-loadable) timeline. *)

open Cmdliner
module T = Ssp_telemetry.Telemetry
module Fb = Ssp_feedback.Feedback

(* Robustness contract: anything wrong with the *input* — a missing or
   unreadable file, source that doesn't compile, a corrupt assembly
   listing, a malformed --faults spec — exits with code 2 and a one-line
   diagnostic, never an uncaught exception with a backtrace. *)
let fail2 msg =
  Printf.eprintf "sspc: %s\n" msg;
  exit 2

let guard k =
  try k () with
  | Sys_error msg -> fail2 msg
  | Ssp_minic.Frontend.Error msg -> fail2 msg
  | Ssp_ir.Asm.Error (msg, line) ->
    fail2 (Printf.sprintf "%s (line %d)" msg line)
  | Ssp_ir.Error.Error e -> fail2 (Ssp_ir.Error.to_string e)
  | Unix.Unix_error (e, _, arg) ->
    fail2
      (if String.equal arg "" then Unix.error_message e
       else arg ^ ": " ^ Unix.error_message e)

let read_source path_or_workload scale =
  match Ssp_workloads.Suite.find path_or_workload with
  | w -> w.Ssp_workloads.Workload.source scale
  | exception Not_found ->
    let ic = open_in path_or_workload in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

let src_arg =
  let doc = "Workload name (em3d, health, mst, treeadd.df, treeadd.bf, mcf, vpr) or path to a mini-C file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let scale_arg =
  let doc = "Workload scale (working-set size knob)." in
  Arg.(value & opt int Ssp_workloads.Suite.test_scale & info [ "scale" ] ~doc)

let out_arg =
  let doc = "Write output to this file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc)

let trace_arg =
  let doc =
    "Enable telemetry and write the structured run report (spans, counters, \
     distributions, series) as JSON to this file."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.JSON" ~doc)

let write_trace path report =
  try T.write_json path report
  with Sys_error msg ->
    Printf.eprintf "sspc: cannot write trace: %s\n" msg;
    exit 1

(* Telemetry stays off unless a trace (or 'stats') asks for it, so the
   default outputs are byte-identical to the uninstrumented tool. *)
let with_trace trace k =
  (match trace with Some _ -> T.set_enabled true | None -> ());
  k ();
  match trace with Some path -> write_trace path (T.report ()) | None -> ()

let trace_events_arg =
  let doc =
    "Enable the telemetry event stream and write a Chrome trace-event JSON \
     (loadable in Perfetto or chrome://tracing: pass spans on one process \
     timeline, speculative-thread lifetimes per hardware context on \
     another, with ts in simulated cycles) to this file."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-events" ] ~docv:"TRACE.JSON" ~doc)

let with_trace_events trace_events k =
  (match trace_events with
  | Some _ ->
    T.set_enabled true;
    T.set_events true
  | None -> ());
  k ();
  match trace_events with
  | Some path -> (
    try
      T.write_trace_events path;
      let dropped = T.events_dropped_count () in
      if dropped > 0 then
        Printf.eprintf
          "sspc: warning: trace-events export truncated — %d events dropped \
           at the %d-event capacity\n\
           %!"
          dropped !T.event_capacity
    with Sys_error msg ->
      Printf.eprintf "sspc: cannot write trace events: %s\n" msg;
      exit 1)
  | None -> ()

let with_out out k =
  match out with
  | None -> k Format.std_formatter
  | Some path ->
    let oc = open_out path in
    let ppf = Format.formatter_of_out_channel oc in
    k ppf;
    Format.pp_print_flush ppf ();
    close_out oc

let compile_cmd =
  let run src scale out =
    guard @@ fun () ->
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    with_out out (fun ppf -> Format.fprintf ppf "%a@." Ssp_ir.Asm.print prog)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile mini-C and emit assembly (re-runnable via 'exec')")
    Term.(const run $ src_arg $ scale_arg $ out_arg)

let exec_cmd =
  let run path =
    guard @@ fun () ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let prog = Ssp_ir.Asm.parse text in
    let r = Ssp_sim.Funcsim.run prog in
    List.iter (fun v -> Format.printf "%Ld@." v) r.Ssp_sim.Funcsim.outputs
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.S"
           ~doc:"Assembly file produced by 'compile' or 'adapt'.")
  in
  Cmd.v (Cmd.info "exec" ~doc:"Assemble and execute a saved binary")
    Term.(const run $ path_arg)

let run_cmd =
  let run src scale =
    guard @@ fun () ->
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    let t0 = Unix.gettimeofday () in
    let r = Ssp_sim.Funcsim.run prog in
    let dt = Unix.gettimeofday () -. t0 in
    List.iter (fun v -> Format.printf "%Ld@." v) r.Ssp_sim.Funcsim.outputs;
    Format.printf "; %d instructions in %.2fs (%.1f Minstr/s)@."
      r.Ssp_sim.Funcsim.instrs dt
      (float_of_int r.Ssp_sim.Funcsim.instrs /. dt /. 1e6)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute functionally and print outputs")
    Term.(const run $ src_arg $ scale_arg)

let profile_cmd =
  let run src scale =
    guard @@ fun () ->
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    let profile = Ssp_profiling.Collect.collect prog in
    let d = Ssp.Delinquent.identify ~coverage:0.9 prog profile in
    Format.printf "%a@." Ssp.Delinquent.pp d
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Profile and print the delinquent loads")
    Term.(const run $ src_arg $ scale_arg)

let jobs_arg =
  let doc =
    "Run the adaptation pipeline across $(docv) domains. The output is \
     byte-identical to --jobs 1; this only changes wall-clock time."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let store_arg =
  let doc =
    "Use the content-addressed artifact store in $(docv): profiles and \
     adaptation results are looked up by content hash before being \
     recomputed. The cache status (hit/miss) is reported on stderr; stdout \
     stays byte-identical to an uncached run."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let cache_status_string = function
  | `Hit -> "hit"
  | `Miss -> "miss"
  | `Off -> "off"

let adapt_cmd =
  let run src scale out trace jobs store =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let config = Ssp_machine.Config.in_order in
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    let adapted =
      match store with
      | None ->
        let profile = Ssp_profiling.Collect.collect prog in
        Ssp.Adapt.run ~jobs ~config prog profile
      | Some dir ->
        let cache = Ssp_store.Store.Cache.open_dir dir in
        let profile, _ = Ssp_store.Store.cached_profile ~cache ~config prog in
        let result, status =
          Ssp_store.Store.run_cached ~cache ~jobs ~config prog profile
        in
        Printf.eprintf "sspc: cache %s\n%!" (cache_status_string status);
        result
    in
    Format.printf "%a@." Ssp.Report.pp adapted.Ssp.Adapt.report;
    with_out out (fun ppf ->
        Format.fprintf ppf "%a@." Ssp_ir.Asm.print adapted.Ssp.Adapt.prog)
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Run the SSP post-pass; emit the adapted binary as assembly")
    Term.(
      const run $ src_arg $ scale_arg $ out_arg $ trace_arg $ jobs_arg
      $ store_arg)

let fsck_cmd =
  let dir_pos =
    let doc = "The artifact store directory to verify." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let run dir =
    guard @@ fun () ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      fail2 (Printf.sprintf "%s: not a directory" dir)
    else begin
      (* Open with an infinite sweep grace so fsck itself observes (and
         reports) the orphans instead of open_dir silently eating them. *)
      let cache =
        Ssp_store.Store.Cache.open_dir ~sweep_grace_s:infinity dir
      in
      let r = Ssp_store.Store.Cache.fsck cache in
      Printf.printf
        "sspc fsck %s: %d scanned, %d valid (%d bytes), %d corrupt removed, \
         %d orphaned tmp removed\n"
        dir r.Ssp_store.Store.Cache.scanned r.Ssp_store.Store.Cache.valid
        r.Ssp_store.Store.Cache.valid_bytes
        r.Ssp_store.Store.Cache.corrupt_removed
        r.Ssp_store.Store.Cache.tmp_removed
    end
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify and GC an artifact store: check every entry's sealed \
          envelope (magic, version, length, content hash), delete corrupt \
          entries and orphaned tmp files left by crashed writers, and \
          report what was found. Always exits 0 on a readable store — \
          after one pass the store is clean by construction.")
    Term.(const run $ dir_pos)

let pipeline_arg =
  let doc = "Pipeline model: inorder or ooo." in
  Arg.(value & opt string "inorder" & info [ "pipeline" ] ~doc)

let ssp_flag =
  let doc = "Adapt the binary with the SSP post-pass before simulating." in
  Arg.(value & flag & info [ "ssp" ] ~doc)

let config_of_pipeline pipeline =
  match pipeline with
  | "ooo" -> Ssp_machine.Config.out_of_order
  | _ -> Ssp_machine.Config.in_order

let simulate ?attrib ?sampling config prog =
  match config.Ssp_machine.Config.pipeline with
  | Ssp_machine.Config.In_order ->
    Ssp_sim.Inorder.run ?attrib ?sampling config prog
  | Ssp_machine.Config.Out_of_order ->
    Ssp_sim.Ooo.run ?attrib ?sampling config prog

let sample_arg =
  let doc =
    "Sampled simulation: alternate $(docv) (DETAIL:FF, in main-thread \
     instructions) cycle-accurate instructions with FF fast-forwarded, \
     functionally-warmed ones. Outputs stay byte-identical to a full run; \
     cycles are extrapolated from the detailed windows. 'default' picks \
     the validated windows."
  in
  Arg.(
    value & opt (some string) None & info [ "sample" ] ~docv:"DETAIL:FF" ~doc)

let parse_sampling = function
  | None -> None
  | Some "default" -> Some Ssp_sim.Smt.default_sampling
  | Some s -> (
    match String.index_opt s ':' with
    | Some i -> (
      let d = int_of_string_opt (String.sub s 0 i) in
      let f =
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      in
      match (d, f) with
      | Some d, Some f when d > 0 && f > 0 ->
        Some { Ssp_sim.Smt.detail_window = d; ff_window = f }
      | _ -> fail2 ("bad --sample spec " ^ s ^ " (want DETAIL:FF)"))
    | None -> fail2 ("bad --sample spec " ^ s ^ " (want DETAIL:FF)"))

let explain_flag =
  let doc =
    "Adapt with the SSP post-pass, simulate with prefetch-lifecycle \
     attribution attached, and print the per-delinquent-load attribution \
     report after the stats (implies --ssp)."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

(* --cluster (and --upload-feedback) accept either a router/shard TCP
   endpoint or a Unix socket path, so they compose with every topology
   the repo can start. *)
let cluster_addr_of s =
  match String.rindex_opt s ':' with
  | Some i
    when int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
         <> None ->
    Ssp_server.Client.Tcp
      ( String.sub s 0 i,
        int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
  | _ -> Ssp_server.Client.Unix_sock s

(* The feedback plane identifies a run's program the same way requests
   do: suite workloads by name, anything else by its full source text
   (so an offline tuner can recompile exactly what was measured). *)
let prog_id_of src scale =
  match Ssp_workloads.Suite.find src with
  | _ -> Fb.Named src
  | exception Not_found -> Fb.Inline (read_source src scale)

let knob_string (k : Ssp.Adapt.load_knob) =
  String.concat ","
    ((if k.Ssp.Adapt.lk_skip then [ "skip" ] else [])
    @ (match k.Ssp.Adapt.lk_model with
      | `Keep -> []
      | `Basic -> [ "model=basic" ]
      | `Chaining -> [ "model=chaining" ])
    @
    if k.Ssp.Adapt.lk_unroll > 0 then
      [ Printf.sprintf "unroll=%d" k.Ssp.Adapt.lk_unroll ]
    else [])

let sim_cmd =
  let run src scale pipeline ssp explain trace trace_events jobs sample upload
      fb_version =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    with_trace_events trace_events @@ fun () ->
    let sampling = parse_sampling sample in
    let config = config_of_pipeline pipeline in
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    let ssp = ssp || explain || upload <> None in
    let result =
      if ssp then begin
        let profile = Ssp_profiling.Collect.collect prog in
        Some (Ssp.Adapt.run ~jobs ~config prog profile)
      end
      else None
    in
    let prog =
      match result with Some a -> a.Ssp.Adapt.prog | None -> prog
    in
    let attrib =
      match result with
      | Some a when explain || upload <> None ->
        Some
          (Ssp_sim.Attrib.create ~prefetch_map:a.Ssp.Adapt.prefetch_map ())
      | _ -> None
    in
    let t0 = Unix.gettimeofday () in
    let r = simulate ?attrib ?sampling config prog in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." Ssp_sim.Stats.pp r;
    Format.printf "; simulated in %.2fs (%.2f Mcycle/s)@." dt
      (float_of_int r.Ssp_sim.Stats.cycles /. dt /. 1e6);
    (match (attrib, result) with
    | Some a, Some res when explain ->
      let ex =
        Ssp.Explain.build ~result:res ~stats:r
          ~attrib:(Ssp_sim.Attrib.summary a) ()
      in
      Format.printf "@.%a@." Ssp.Explain.pp ex
    | _ -> ());
    match (upload, attrib) with
    | Some addr, Some a ->
      let rep =
        Fb.report_of_attrib
          ~prog:(prog_id_of src scale)
          ~scale ~pipeline ~version:fb_version
          ~cycles:r.Ssp_sim.Stats.cycles (Ssp_sim.Attrib.summary a)
      in
      let req =
        Ssp_server.Proto.Feedback
          {
            prog =
              (match rep.Fb.fr_prog with
              | Fb.Named n -> Ssp_server.Proto.Workload n
              | Fb.Inline text -> Ssp_server.Proto.Source text);
            scale;
            pipeline;
            tenant = Ssp_server.Proto.default_tenant;
            blob = Fb.encode_report rep;
          }
      in
      (match
         Ssp_server.Client.request_addr ~timeout_s:60. (cluster_addr_of addr)
           req
       with
      | Ssp_server.Proto.Ok_reply ->
        Printf.eprintf
          "sspc: feedback uploaded (%d loads, artifact version %d)\n%!"
          (List.length rep.Fb.fr_loads)
          fb_version
      | Ssp_server.Proto.Error_reply { pass; what; _ } ->
        fail2 (Printf.sprintf "feedback upload failed [%s]: %s" pass what)
      | _ -> fail2 "unexpected reply to feedback upload")
    | _ -> ()
  in
  let upload_arg =
    let doc =
      "After the simulation, upload the per-delinquent-load attribution \
       report to the daemon or router at $(docv) (HOST:PORT or a Unix \
       socket path), feeding the cluster's closed-loop tuner. Implies the \
       attributed SSP pipeline."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "upload-feedback" ] ~docv:"ADDR" ~doc)
  in
  let fb_version_arg =
    let doc =
      "Tuning version of the adapted artifact this run measured (0 = \
       untuned); stamped into the uploaded report so the aggregator can \
       tell fresh reports from stale ones."
    in
    Arg.(value & opt int 0 & info [ "feedback-version" ] ~docv:"N" ~doc)
  in
  Cmd.v (Cmd.info "sim" ~doc:"Cycle-level simulation")
    Term.(
      const run $ src_arg $ scale_arg $ pipeline_arg $ ssp_flag $ explain_flag
      $ trace_arg $ trace_events_arg $ jobs_arg $ sample_arg $ upload_arg
      $ fb_version_arg)

let explain_cmd =
  let run src scale pipeline json trace_events jobs feedback store =
    guard @@ fun () ->
    with_trace_events trace_events @@ fun () ->
    let config = config_of_pipeline pipeline in
    let prog = Ssp_minic.Frontend.compile (read_source src scale) in
    let profile = Ssp_profiling.Collect.collect prog in
    let result = Ssp.Adapt.run ~jobs ~config prog profile in
    let attrib =
      Ssp_sim.Attrib.create ~prefetch_map:result.Ssp.Adapt.prefetch_map ()
    in
    let stats = simulate ~attrib config result.Ssp.Adapt.prog in
    (* --feedback joins the fleet's decayed aggregate (uploaded by
       'sim --upload-feedback' runs cluster-wide) into the local table:
       what this machine observes next to what the whole fleet did, and
       the tuner's current per-load decision. *)
    let fb_lookup, fb_header =
      if not feedback then ((fun _ -> None), None)
      else begin
        let dir =
          match store with
          | Some d -> d
          | None -> Ssp_store.Store.Cache.default_dir ()
        in
        let cache = Ssp_store.Store.Cache.open_dir dir in
        let key =
          Fb.aggregate_key ~config ~knobs:Ssp.Adapt.default_knobs prog profile
        in
        match
          Ssp_store.Store.Cache.get cache key ~decode:Fb.decode_aggregate
        with
        | None ->
          ( (fun _ -> None),
            Some "feedback: no fleet aggregate for this workload/config" )
        | Some agg ->
          let lookup iref =
            let tuned =
              match Ssp_ir.Iref.Map.find_opt iref agg.Fb.ag_overrides with
              | Some k when k <> Ssp.Adapt.keep_knob ->
                "  tuned[" ^ knob_string k ^ "]"
              | _ -> ""
            in
            match Ssp_ir.Iref.Map.find_opt iref agg.Fb.ag_loads with
            | Some al ->
              Some
                (Printf.sprintf
                   "fleet cov %.1f%%  acc %.1f%%  timely %.1f%%  (%.0f \
                    issues)%s"
                   (100. *. Fb.coverage_frac al)
                   (100. *. Fb.accuracy al)
                   (100. *. Fb.timeliness al)
                   (Fb.attempts al) tuned)
            | None ->
              if tuned <> "" then Some ("no fresh fleet samples" ^ tuned)
              else None
          in
          ( lookup,
            Some
              (Printf.sprintf "feedback: v%d  %d reports (%d stale)%s"
                 agg.Fb.ag_version agg.Fb.ag_reports agg.Fb.ag_stale
                 (if agg.Fb.ag_last_action = "" then ""
                  else "  last action " ^ agg.Fb.ag_last_action)) )
      end
    in
    let ex =
      Ssp.Explain.build ~feedback:fb_lookup ~result ~stats
        ~attrib:(Ssp_sim.Attrib.summary attrib) ()
    in
    (match fb_header with Some h -> Format.printf "%s@." h | None -> ());
    Format.printf "%a@." Ssp.Explain.pp ex;
    match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (Ssp.Explain.to_json ex);
      output_char oc '\n';
      close_out oc
    | None -> ()
  in
  let json_arg =
    let doc = "Also write the attribution report as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"OUT.JSON" ~doc)
  in
  let feedback_flag =
    let doc =
      "Join the fleet's feedback aggregate (per-load coverage, accuracy, \
       timeliness across uploaded reports, and the tuner's current \
       decision) into the table."
    in
    Arg.(value & flag & info [ "feedback" ] ~doc)
  in
  let store_arg =
    let doc =
      "Artifact-store directory holding the feedback aggregate (default: \
       the usual cache directory)."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the full pipeline with prefetch attribution and report, per \
          delinquent load: profile miss share, slice/scheme/slack, trigger \
          placement, and the simulated useful/late/early-evicted/redundant/\
          dropped classification with coverage, accuracy and timeliness")
    Term.(
      const run $ src_arg $ scale_arg $ pipeline_arg $ json_arg
      $ trace_events_arg $ jobs_arg $ feedback_flag $ store_arg)

(* ---- sspc tune: offline closed-loop tuning over a store ---- *)

let tune_cmd =
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let name_of = function
    | Fb.Named n -> n
    | Fb.Inline src ->
      "inline-" ^ String.sub (Digest.to_hex (Digest.string src)) 0 12
  in
  let run store explain asm_dir json min_reports min_samples =
    guard @@ fun () ->
    let dir =
      match store with
      | Some d -> d
      | None -> Ssp_store.Store.Cache.default_dir ()
    in
    let cache = Ssp_store.Store.Cache.open_dir dir in
    let results = Fb.tune_store ~min_reports ~min_samples cache in
    if results = [] then
      print_endline "no feedback reports in the store; nothing to tune";
    List.iter
      (fun st ->
        let name = name_of st.Fb.st_prog in
        let agg = st.Fb.st_aggregate in
        match st.Fb.st_tuned with
        | None ->
          Printf.printf
            "%s scale %d %s: %d reports, no action (v%d holds)\n" name
            st.Fb.st_scale st.Fb.st_pipeline st.Fb.st_reports
            agg.Fb.ag_version
        | Some t ->
          Printf.printf "%s scale %d %s: %d reports -> published v%d (%d %s)\n"
            name st.Fb.st_scale st.Fb.st_pipeline st.Fb.st_reports
            agg.Fb.ag_version
            (List.length t.Fb.td_actions)
            (if List.length t.Fb.td_actions = 1 then "action" else "actions");
          if explain then
            List.iter
              (fun a -> Printf.printf "  %s\n" (Fb.action_to_string a))
              t.Fb.td_actions;
          (match asm_dir with
          | Some d ->
            let path =
              Filename.concat d
                (Printf.sprintf "%s-s%d-%s-v%d.s" name st.Fb.st_scale
                   st.Fb.st_pipeline agg.Fb.ag_version)
            in
            let oc = open_out path in
            output_string oc
              (Format.asprintf "%a@." Ssp_ir.Asm.print
                 t.Fb.td_result.Ssp.Adapt.prog);
            close_out oc;
            Printf.printf "  wrote %s\n" path
          | None -> ()))
      results;
    match json with
    | None -> ()
    | Some path ->
      let b = Buffer.create 1024 in
      Buffer.add_string b "[";
      List.iteri
        (fun i st ->
          if i > 0 then Buffer.add_string b ",";
          let agg = st.Fb.st_aggregate in
          Printf.bprintf b
            "{\"workload\":\"%s\",\"scale\":%d,\"pipeline\":\"%s\",\"reports\":%d,\"version\":%d,\"actions\":["
            (json_escape (name_of st.Fb.st_prog))
            st.Fb.st_scale
            (json_escape st.Fb.st_pipeline)
            st.Fb.st_reports agg.Fb.ag_version;
          (match st.Fb.st_tuned with
          | None -> ()
          | Some t ->
            List.iteri
              (fun j a ->
                if j > 0 then Buffer.add_string b ",";
                Printf.bprintf b
                  "{\"load\":\"%s\",\"what\":\"%s\",\"why\":\"%s\"}"
                  (json_escape (Ssp_ir.Iref.to_string a.Fb.act_load))
                  (json_escape a.Fb.act_what)
                  (json_escape a.Fb.act_why))
              t.Fb.td_actions);
          Buffer.add_string b "]}")
        results;
      Buffer.add_string b "]\n";
      let oc = open_out path in
      Buffer.output_buffer oc b;
      close_out oc
  in
  let store_pos =
    let doc =
      "Artifact-store directory to tune (default: the usual cache \
       directory)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"STORE" ~doc)
  in
  let explain_flag =
    let doc =
      "Print the structured tuning diff: every per-load action with the \
       aggregate signal that triggered it."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let asm_dir_arg =
    let doc =
      "Write each newly published tuned artifact's assembly to \
       $(docv)/<workload>-s<scale>-<pipeline>-v<version>.s (byte-identical \
       to what a daemon serving the same store returns)."
    in
    Arg.(value & opt (some string) None & info [ "asm-dir" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Also write the tuning diff as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"OUT.JSON" ~doc)
  in
  let min_reports_arg =
    let doc = "Confidence floor: tune only on at least $(docv) reports." in
    Arg.(
      value
      & opt int Fb.default_min_reports
      & info [ "min-reports" ] ~docv:"N" ~doc)
  in
  let min_samples_arg =
    let doc =
      "Per-load confidence floor: decide only about loads with at least \
       $(docv) (decayed) attempted prefetches."
    in
    Arg.(
      value
      & opt float Fb.default_min_samples
      & info [ "min-samples" ] ~docv:"X" ~doc)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Run one offline closed-loop tuning round over a store: rebuild \
          each workload's aggregate from its persisted attribution \
          reports, derive per-load knob overrides (demote \
          mostly-redundant loads toward skip, promote chronically-late \
          ones toward chaining and wider lookahead), and publish the \
          re-adapted artifact under the next immutable version. \
          Deterministic: a daemon tuning the same store publishes \
          byte-identical artifacts")
    Term.(
      const run $ store_pos $ explain_flag $ asm_dir_arg $ json_arg
      $ min_reports_arg $ min_samples_arg)

let fetch_snapshot addr =
  match
    Ssp_server.Client.request_addr ~timeout_s:30. addr
      Ssp_server.Proto.Stats_snapshot
  with
  | Ssp_server.Proto.Snapshot_reply { snapshot } ->
    Ssp_server.Snapshot.decode snapshot
  | Ssp_server.Proto.Error_reply { pass; what; _ } ->
    fail2 (Printf.sprintf "server error [%s]: %s" pass what)
  | _ -> fail2 "unexpected reply to stats-snapshot request"

let cluster_arg =
  let doc =
    "Ask a running daemon or router at $(docv) (HOST:PORT or a Unix socket \
     path) for its merged telemetry snapshot instead of running the local \
     pipeline. Against a router this aggregates every live shard: \
     histograms merge bucket-wise (exact quantiles), counters sum, and \
     eviction/rejection counters stay attributed per shard."
  in
  Arg.(value & opt (some string) None & info [ "cluster" ] ~docv:"ADDR" ~doc)

let json_flag =
  let doc = "Print the snapshot as JSON instead of a table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_cmd =
  let stats_src_arg =
    let doc =
      "Workload name or mini-C file (required unless --cluster is given)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let run src scale pipeline trace cluster json =
    guard @@ fun () ->
    match cluster with
    | Some addr ->
      let snap = fetch_snapshot (cluster_addr_of addr) in
      if json then print_endline (Ssp_server.Snapshot.to_json snap)
      else Format.printf "%a@." Ssp_server.Snapshot.pp snap
    | None ->
      let src =
        match src with
        | Some s -> s
        | None -> fail2 "stats needs a PROGRAM (or --cluster ADDR)"
      in
      T.set_enabled true;
      let config =
        match pipeline with
        | "ooo" -> Ssp_machine.Config.out_of_order
        | _ -> Ssp_machine.Config.in_order
      in
      let prog = Ssp_minic.Frontend.compile (read_source src scale) in
      let profile = Ssp_profiling.Collect.collect prog in
      let adapted = Ssp.Adapt.run ~config prog profile in
      let r =
        match config.Ssp_machine.Config.pipeline with
        | Ssp_machine.Config.In_order ->
          Ssp_sim.Inorder.run config adapted.Ssp.Adapt.prog
        | Ssp_machine.Config.Out_of_order ->
          Ssp_sim.Ooo.run config adapted.Ssp.Adapt.prog
      in
      if json then
        print_endline
          (Ssp_server.Snapshot.to_json (Ssp_server.Snapshot.capture ()))
      else begin
        let report = T.report () in
        Format.printf "%a@.@.%a@." Ssp_sim.Stats.pp r T.pp_summary report;
        Format.printf "telemetry events dropped: %d@."
          (T.events_dropped_count ())
      end;
      (match trace with Some path -> write_trace path (T.report ()) | None -> ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the full pipeline (compile, profile, adapt, simulate) with \
          telemetry on and print the phase-timing and counter summary; with \
          --cluster, fetch and print a running cluster's merged snapshot \
          instead")
    Term.(
      const run $ stats_src_arg $ scale_arg $ pipeline_arg $ trace_arg
      $ cluster_arg $ json_flag)

let chaos_cmd =
  let run seed campaigns faults json jobs corpus workloads =
    guard @@ fun () ->
    let specs =
      match faults with
      | None -> Ssp_harness.Chaos.default_specs
      | Some s -> (
        match Ssp_fault.Fault.parse_specs s with
        | Ok specs -> specs
        | Error msg -> fail2 msg)
    in
    let named =
      List.map
        (fun n ->
          match Ssp_workloads.Suite.find n with
          | w -> w
          | exception Not_found -> fail2 ("unknown workload " ^ n))
        workloads
    in
    let generated =
      if corpus > 0 then Ssp_workloads.Suite.corpus ~n:corpus ~seed else []
    in
    let ws =
      match named @ generated with
      | [] -> Ssp_workloads.Suite.all
      | ws -> ws
    in
    let report = Ssp_harness.Chaos.run ~jobs ~specs ~seed ~campaigns ws in
    Format.printf "%a@." Ssp_harness.Chaos.pp report;
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (Ssp_harness.Chaos.to_json report);
      output_char oc '\n';
      close_out oc
    | None -> ());
    if Ssp_harness.Chaos.violations report > 0 then exit 1
  in
  let seed_arg =
    let doc = "Base seed for the fault campaigns." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let campaigns_arg =
    let doc = "Fault campaigns (seeded plans) per workload." in
    Arg.(value & opt int 8 & info [ "campaigns" ] ~docv:"N" ~doc)
  in
  let faults_arg =
    let doc =
      "Per-site fault probabilities as site=p[:limit],... (default: every \
       registered site at a rate tuned to its query frequency)."
    in
    Arg.(
      value & opt (some string) None & info [ "faults" ] ~docv:"SPECS" ~doc)
  in
  let json_arg =
    let doc = "Also write the chaos report as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"OUT.JSON" ~doc)
  in
  let workloads_arg =
    let doc = "Workloads to sweep (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let corpus_arg =
    let doc =
      "Also sweep $(docv) generated workloads (gen:SEED .. gen:SEED+N-1, \
       seeds starting at --seed): a seeded, replayable corpus grid \
       differential-testing the adaptation pipeline."
    in
    Arg.(value & opt int 0 & info [ "corpus" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection campaigns: adapt and simulate every workload \
          under seeded fault plans (killed speculative threads, dropped \
          prefetches, broken chains, refused slices, stale profiles, ...) \
          and verify main-thread outputs stay bit-identical to the \
          fault-free unadapted run. Exits 1 on any safety violation.")
    Term.(
      const run $ seed_arg $ campaigns_arg $ faults_arg $ json_arg $ jobs_arg
      $ corpus_arg $ workloads_arg)

let bench_cmd =
  let run () =
    List.iter
      (fun w ->
        Format.printf "%-12s %s@." w.Ssp_workloads.Workload.name
          w.Ssp_workloads.Workload.description)
      Ssp_workloads.Suite.all
  in
  Cmd.v (Cmd.info "bench" ~doc:"List the benchmark workloads")
    Term.(const run $ const ())

let table1_cmd =
  let run () =
    Format.printf "== In-order model ==@.%a@.@.== Out-of-order model ==@.%a@."
      Ssp_machine.Config.pp Ssp_machine.Config.in_order Ssp_machine.Config.pp
      Ssp_machine.Config.out_of_order
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print the Table 1 machine models")
    Term.(const run $ const ())

(* ---- the adaptation service (sspc serve / route / client ...) ---- *)

let socket_arg =
  let doc = "Unix-domain socket path of the adaptation daemon (or router)." in
  Arg.(
    value & opt string "/tmp/sspc.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" && p >= 0 && p < 65536 -> Ok (host, p)
      | _ -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s)))
    | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let tcp_arg =
  let doc =
    "Also listen on (serve/route) or talk to (client) this TCP endpoint. \
     Port 0 binds an ephemeral port."
  in
  Arg.(
    value & opt (some hostport_conv) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let serve_cmd =
  let run socket tcp jobs store no_cache max_frame timeout max_batch max_queue
      retry_after tune trace =
    guard @@ fun () ->
    (* The daemon always counts: its telemetry is the cluster's
       observability surface ('sspc client stats'), trace or not. *)
    T.set_enabled true;
    with_trace trace @@ fun () ->
    let cache =
      if no_cache then None
      else begin
        let dir =
          match store with
          | Some d -> d
          | None -> Ssp_store.Store.Cache.default_dir ()
        in
        Some (Ssp_store.Store.Cache.open_dir dir)
      end
    in
    Ssp_server.Server.serve
      {
        Ssp_server.Server.socket = Some socket;
        tcp;
        jobs;
        cache;
        max_frame;
        timeout_s = timeout;
        max_batch;
        max_queue;
        retry_after_s = retry_after;
        tune;
      }
  in
  let store_dir_arg =
    let doc =
      "Artifact-store directory (default: $SSPC_CACHE_DIR, else \
       $XDG_CACHE_HOME/sspc, else ~/.cache/sspc)."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let no_cache_flag =
    let doc = "Serve without the content-addressed artifact store." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let max_frame_arg =
    let doc = "Reject request frames larger than $(docv) bytes." in
    Arg.(
      value
      & opt int Ssp_server.Proto.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-request budget in seconds: queued requests and half-received \
       frames older than this get a structured timeout error."
    in
    Arg.(value & opt float 60. & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_batch_arg =
    let doc = "Admission: fan out at most $(docv) work requests per round." in
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Admission: total backlog bound; arrivals beyond it are answered with \
       a retry-after rejection (0 rejects all work — useful to drain a \
       shard or exercise client backoff)."
    in
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let retry_after_arg =
    let doc = "Retry-after hint (seconds) carried by rejection replies." in
    Arg.(value & opt float 0.2 & info [ "retry-after" ] ~docv:"SECONDS" ~doc)
  in
  let tune_flag =
    let doc =
      "Closed-loop tuning: when an uploaded attribution report pushes its \
       workload's aggregate past the confidence thresholds, run a \
       deterministic tuning round and publish the next artifact version. \
       Without this flag the daemon only persists and aggregates reports \
       (run 'sspc tune' offline)."
    in
    Arg.(value & flag & info [ "tune" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the adaptation daemon (one cluster shard): a socket service — \
          Unix-domain, and TCP with --tcp — that batches concurrent \
          adapt/sim requests across a domain pool under per-tenant \
          deficit-round-robin admission control, and answers repeated \
          requests from the content-addressed artifact store")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ store_dir_arg
      $ no_cache_flag $ max_frame_arg $ timeout_arg $ max_batch_arg
      $ max_queue_arg $ retry_after_arg $ tune_flag $ trace_arg)

let route_cmd =
  let run socket tcp shards vnodes quarantine quarantine_max probe_interval
      shard_timeout no_replicate max_frame trace =
    guard @@ fun () ->
    T.set_enabled true;
    with_trace trace @@ fun () ->
    Ssp_cluster.Router.serve
      {
        Ssp_cluster.Router.socket = Some socket;
        tcp;
        shards;
        vnodes;
        max_frame;
        quarantine_s = quarantine;
        quarantine_max_s = quarantine_max;
        probe_interval_s = probe_interval;
        shard_timeout_s = shard_timeout;
        replicate = not no_replicate;
        hints_max = 256;
      }
  in
  let shard_arg =
    let doc =
      "A shard daemon's TCP endpoint ('sspc serve --tcp ...'); repeatable. \
       Order does not matter: placement comes from the consistent-hash \
       ring, so every router with the same shard set routes identically."
    in
    Arg.(
      value & opt_all hostport_conv [] & info [ "shard" ] ~docv:"HOST:PORT" ~doc)
  in
  let vnodes_arg =
    let doc = "Virtual nodes per shard on the consistent-hash ring." in
    Arg.(value & opt int 128 & info [ "vnodes" ] ~docv:"N" ~doc)
  in
  let quarantine_arg =
    let doc =
      "Circuit-breaker backoff base: roughly how long a shard's first \
       failure quarantines it (growing per consecutive failure, with \
       decorrelated jitter). A quarantined shard is re-admitted only after \
       a Ping probe succeeds."
    in
    Arg.(value & opt float 2. & info [ "quarantine" ] ~docv:"SECONDS" ~doc)
  in
  let quarantine_max_arg =
    let doc = "Circuit-breaker backoff cap." in
    Arg.(value & opt float 30. & info [ "quarantine-max" ] ~docv:"SECONDS" ~doc)
  in
  let probe_interval_arg =
    let doc =
      "How often the health prober scans for quarantined shards whose \
       backoff expired and pings them (half-open probing)."
    in
    Arg.(
      value & opt float 0.25 & info [ "probe-interval" ] ~docv:"SECONDS" ~doc)
  in
  let no_replicate_flag =
    let doc =
      "Disable replication: do not write adapt artifacts through to the \
       ring successor (failover falls back to cold recompute)."
    in
    Arg.(value & flag & info [ "no-replicate" ] ~doc)
  in
  let shard_timeout_arg =
    let doc =
      "Socket timeout per shard exchange: a shard that accepts but never \
       replies is treated as dead (failover) instead of hanging the client."
    in
    Arg.(value & opt float 120. & info [ "shard-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_frame_arg =
    let doc = "Reject frames larger than $(docv) bytes." in
    Arg.(
      value
      & opt int Ssp_server.Proto.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster router: place client requests on shard daemons by \
          consistent hashing (cache affinity), replicate adapt artifacts to \
          the ring successor (warm failover + hinted handoff), fail \
          transport errors over to the ring's next live shard behind \
          probing circuit breakers, spend end-to-end deadline budgets, \
          forward admission rejections untouched, and degrade to a \
          structured error — never wrong bytes — when no shard answers")
    Term.(
      const run $ socket_arg $ tcp_arg $ shard_arg $ vnodes_arg
      $ quarantine_arg $ quarantine_max_arg $ probe_interval_arg
      $ shard_timeout_arg $ no_replicate_flag $ max_frame_arg $ trace_arg)

(* Workload names travel by name (the server compiles them); anything
   else is read here and shipped as source text. *)
let prog_ref_of src scale =
  match Ssp_workloads.Suite.find src with
  | _ -> Ssp_server.Proto.Workload src
  | exception Not_found ->
    let ic = open_in src in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    ignore scale;
    Ssp_server.Proto.Source text

let server_error_to_exit2 = function
  | Ssp_server.Proto.Error_reply { pass; what; injected = _ } ->
    fail2 (Printf.sprintf "server error [%s]: %s" pass what)
  | Ssp_server.Proto.Busy_reply { retry_after_s } ->
    fail2
      (Printf.sprintf "server saturated (retries exhausted; retry after %.2fs)"
         retry_after_s)
  | Ssp_server.Proto.Deadline_exceeded { stage; budget_ms; elapsed_ms } ->
    fail2
      (Printf.sprintf
         "deadline exceeded at %s (budget %.0fms, elapsed %.0fms)" stage
         budget_ms elapsed_ms)
  | resp -> resp

let tenant_arg =
  let doc =
    "Tenant this request is accounted to (per-tenant fairness and counters)."
  in
  Arg.(
    value
    & opt string Ssp_server.Proto.default_tenant
    & info [ "tenant" ] ~docv:"NAME" ~doc)

let retries_arg =
  let doc =
    "Retry transient connection failures and retry-after rejections up to \
     $(docv) times with capped jittered backoff before giving up (requests \
     are idempotent, so retrying is always safe)."
  in
  Arg.(value & opt int 4 & info [ "retries" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "End-to-end deadline: the client mints a budget of $(docv) seconds \
     covering every attempt, retry sleep, and hop; each hop spends it and \
     sheds the request with a structured reply (exit 2) once it expires, \
     instead of burning server time on an answer nobody is waiting for. 0 \
     disables the deadline."
  in
  Arg.(value & opt float 0. & info [ "deadline" ] ~docv:"SECONDS" ~doc)

(* --tcp wins when both endpoints are given: the client talks to exactly
   one peer (a daemon or a router), never both. *)
let addr_of ~socket ~tcp =
  match tcp with
  | Some (host, port) -> Ssp_server.Client.Tcp (host, port)
  | None -> Ssp_server.Client.Unix_sock socket

let client_request ?trace ?deadline_s ~socket ~tcp ~retries req =
  let on_wait ~reason ~delay_s =
    Printf.eprintf "sspc: %s; retrying in %.2fs\n%!" reason delay_s
  in
  Ssp_server.Client.request_retry_hops ~attempts:retries ~on_wait ?trace
    ?deadline_s (addr_of ~socket ~tcp) req

let write_text out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc

(* ---- distributed tracing: mint, propagate, stitch ---- *)

let mint_trace_id () =
  let st = Random.State.make_self_init () in
  Printf.sprintf "%04x%04x%04x%04x"
    (Random.State.int st 0x10000)
    (Random.State.int st 0x10000)
    (Random.State.int st 0x10000)
    (Random.State.int st 0x10000)

let client_trace_arg =
  let doc =
    "Distributed trace: mint a trace id, propagate it through the router \
     into the shard, and write one stitched Chrome trace (one process \
     timeline per hop — client, router, shard — with the per-hop latency \
     breakdown, ts in microseconds) to this file. The trace id is printed \
     on stderr and counted in each process's telemetry."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.JSON" ~doc)

(* The reply carries durations, not wall-clock timestamps (the processes
   do not share a clock); the stitcher centers each hop's window inside
   its parent — nesting and widths are faithful, absolute offsets are a
   visualization choice. Disjoint stages (queue/compute/serialize) are
   laid out sequentially inside their node's window; span:* hops nest by
   path under compute. *)
let stitch_events ~trace_id ~label ~total_ms hops =
  let module P = Ssp_server.Proto in
  let nodes =
    List.fold_left
      (fun acc h ->
        if List.mem h.P.hop_node acc then acc else acc @ [ h.P.hop_node ])
      [] hops
  in
  let processes =
    (0, "client")
    :: List.mapi
         (fun i n -> (i + 1, if String.equal n "router" then n else "shard " ^ n))
         nodes
  in
  let pid_of node =
    let rec idx i = function
      | [] -> 0
      | n :: _ when String.equal n node -> i + 1
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 nodes
  in
  let us ms = ms *. 1000. in
  let events = ref [] in
  let emit ?(args = []) ~pid ~ts ~dur name =
    events :=
      T.complete_event ~args ~cat:"trace" ~pid ~tid:0 ~ts:(us ts) ~dur:(us dur)
        name
      :: !events
  in
  emit
    ~args:[ ("trace_id", trace_id) ]
    ~pid:0 ~ts:0. ~dur:total_ms ("request " ^ label);
  let hops_of node = List.filter (fun h -> String.equal h.P.hop_node node) hops in
  (* Client window -> router forward window (if any) -> shard window. *)
  let outer = ref (0., total_ms) in
  let router_hops = hops_of "router" in
  List.iter
    (fun h ->
      if String.equal h.P.hop_stage "forward" then begin
        let start, dur = !outer in
        let s = start +. Float.max 0. ((dur -. h.P.hop_ms) /. 2.) in
        emit ~pid:(pid_of "router") ~ts:s ~dur:h.P.hop_ms "forward";
        outer := (s, h.P.hop_ms)
      end)
    router_hops;
  List.iter
    (fun node ->
      if not (String.equal node "router") then begin
        let nhops = hops_of node in
        let disjoint =
          List.filter
            (fun h ->
              List.mem h.P.hop_stage [ "queue"; "compute"; "serialize" ])
            nhops
        in
        let window =
          List.fold_left (fun acc h -> acc +. h.P.hop_ms) 0. disjoint
        in
        let ostart, odur = !outer in
        let cursor = ref (ostart +. Float.max 0. ((odur -. window) /. 2.)) in
        let pid = pid_of node in
        let compute_win = ref None in
        List.iter
          (fun h ->
            emit ~pid ~ts:!cursor ~dur:h.P.hop_ms h.P.hop_stage;
            if String.equal h.P.hop_stage "compute" then
              compute_win := Some (!cursor, h.P.hop_ms);
            cursor := !cursor +. h.P.hop_ms)
          disjoint;
        let cstart, _ =
          match !compute_win with Some w -> w | None -> (ostart, odur)
        in
        (* store.lookup sits at the head of compute; span hops nest by
           path, children packed from their parent's start. *)
        List.iter
          (fun h ->
            if String.equal h.P.hop_stage "store.lookup" then
              emit ~pid ~ts:cstart ~dur:h.P.hop_ms h.P.hop_stage)
          nhops;
        let cursors : (string, float) Hashtbl.t = Hashtbl.create 16 in
        Hashtbl.replace cursors "" cstart;
        List.iter
          (fun h ->
            match
              if String.length h.P.hop_stage > 5
                 && String.equal (String.sub h.P.hop_stage 0 5) "span:"
              then
                Some
                  (String.sub h.P.hop_stage 5 (String.length h.P.hop_stage - 5))
              else None
            with
            | None -> ()
            | Some path ->
              let parent =
                match String.rindex_opt path '/' with
                | Some i -> String.sub path 0 i
                | None -> ""
              in
              let at =
                match Hashtbl.find_opt cursors parent with
                | Some c -> c
                | None -> cstart
              in
              emit ~pid ~ts:at ~dur:h.P.hop_ms ("span " ^ path);
              Hashtbl.replace cursors path at;
              Hashtbl.replace cursors parent (at +. h.P.hop_ms))
          nhops
      end)
    nodes;
  (* Whatever the nested windows do not explain is connect + wire +
     frame I/O: surfaced as its own client-side slice so the breakdown
     visibly sums to the observed latency. *)
  let _, inner = !outer in
  let shard_window =
    List.fold_left
      (fun acc h ->
        if
          (not (String.equal h.P.hop_node "router"))
          && List.mem h.P.hop_stage [ "queue"; "compute"; "serialize" ]
        then acc +. h.P.hop_ms
        else acc)
      0. hops
  in
  let child = if router_hops <> [] then inner else shard_window in
  let residual = Float.max 0. (total_ms -. child) in
  events :=
    T.complete_event
      ~args:[ ("trace_id", trace_id) ]
      ~cat:"trace" ~pid:0 ~tid:1 ~ts:0. ~dur:(us residual) "network+flush"
    :: !events;
  (processes, List.rev !events)

let write_stitched_trace path ~trace_id ~label ~total_ms hops =
  let processes, events = stitch_events ~trace_id ~label ~total_ms hops in
  let oc = open_out path in
  output_string oc (T.chrome_trace_json ~processes events);
  output_char oc '\n';
  close_out oc;
  let pick stage =
    List.fold_left
      (fun acc h ->
        if String.equal h.Ssp_server.Proto.hop_stage stage then
          acc +. h.Ssp_server.Proto.hop_ms
        else acc)
      0. hops
  in
  Printf.eprintf
    "sspc: trace %s: total %.2fms = queue %.2f + store.lookup %.2f + compute \
     %.2f + serialize %.2f + network/flush %.2f (%d hops -> %s)\n\
     %!"
    trace_id total_ms (pick "queue") (pick "store.lookup") (pick "compute")
    (pick "serialize")
    (Float.max 0.
       (total_ms -. pick "queue" -. pick "compute" -. pick "serialize"))
    (List.length hops) path

let with_client_trace trace label k =
  match trace with
  | None ->
    let resp, _ = k None in
    resp
  | Some path ->
    let trace_id = mint_trace_id () in
    Printf.eprintf "sspc: trace %s\n%!" trace_id;
    let ctx = { Ssp_server.Proto.trace_id; span_id = 1 } in
    let t0 = Unix.gettimeofday () in
    let resp, hops = k (Some ctx) in
    let total_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    write_stitched_trace path ~trace_id ~label ~total_ms hops;
    resp

let client_adapt_cmd =
  let run src scale pipeline socket tcp tenant retries deadline out trace =
    guard @@ fun () ->
    let deadline_s = if deadline > 0. then Some deadline else None in
    let req =
      Ssp_server.Proto.Adapt
        { prog = prog_ref_of src scale; scale; pipeline; tenant }
    in
    let resp =
      with_client_trace trace ("adapt " ^ src) (fun ctx ->
          client_request ?trace:ctx ?deadline_s ~socket ~tcp ~retries req)
    in
    match server_error_to_exit2 resp with
    | Ssp_server.Proto.Adapted { report; asm; cache } ->
      (* Cache status goes to stderr so stdout stays byte-identical to
         the offline 'sspc adapt'. *)
      Printf.eprintf "sspc: cache %s\n%!" cache;
      print_string report;
      write_text out asm
    | _ -> fail2 "unexpected reply to adapt request"
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Adapt via the daemon or router (output matches 'sspc adapt')")
    Term.(
      const run $ src_arg $ scale_arg $ pipeline_arg $ socket_arg $ tcp_arg
      $ tenant_arg $ retries_arg $ deadline_arg $ out_arg $ client_trace_arg)

let client_sim_cmd =
  let run src scale pipeline ssp socket tcp tenant retries deadline trace =
    guard @@ fun () ->
    let deadline_s = if deadline > 0. then Some deadline else None in
    let req =
      Ssp_server.Proto.Sim
        { prog = prog_ref_of src scale; scale; pipeline; ssp; tenant }
    in
    let resp =
      with_client_trace trace ("sim " ^ src) (fun ctx ->
          client_request ?trace:ctx ?deadline_s ~socket ~tcp ~retries req)
    in
    match server_error_to_exit2 resp with
    | Ssp_server.Proto.Simmed { stats } -> print_string stats
    | _ -> fail2 "unexpected reply to sim request"
  in
  Cmd.v (Cmd.info "sim" ~doc:"Cycle-simulate via the daemon or router")
    Term.(
      const run $ src_arg $ scale_arg $ pipeline_arg $ ssp_flag $ socket_arg
      $ tcp_arg $ tenant_arg $ retries_arg $ deadline_arg $ client_trace_arg)

let client_stats_cmd =
  let run socket tcp retries =
    guard @@ fun () ->
    match
      server_error_to_exit2
        (fst (client_request ~socket ~tcp ~retries Ssp_server.Proto.Stats))
    with
    | Ssp_server.Proto.Stats_reply { summary } -> print_string summary
    | _ -> fail2 "unexpected reply to stats request"
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print the daemon's (or router's) telemetry summary")
    Term.(const run $ socket_arg $ tcp_arg $ retries_arg)

let client_shutdown_cmd =
  let run socket tcp =
    guard @@ fun () ->
    match
      server_error_to_exit2
        (Ssp_server.Client.request_addr (addr_of ~socket ~tcp)
           Ssp_server.Proto.Shutdown)
    with
    | Ssp_server.Proto.Ok_reply -> ()
    | _ -> fail2 "unexpected reply to shutdown request"
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Stop the daemon or router (acknowledged before exit)")
    Term.(const run $ socket_arg $ tcp_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a running adaptation daemon ('sspc serve') or cluster \
          router ('sspc route')")
    [ client_adapt_cmd; client_sim_cmd; client_stats_cmd; client_shutdown_cmd ]

(* ---- sspc top: poll the snapshot plane and redraw ---- *)

let top_cmd =
  let addr_pos =
    let doc = "Router or daemon endpoint (HOST:PORT or a Unix socket path)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) redraws (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.equal (String.sub s 0 (String.length prefix)) prefix
  in
  let strip prefix s =
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  in
  let draw ~prev ~dt (snap : Ssp_server.Snapshot.t) =
    let module S = Ssp_server.Snapshot in
    let b = Buffer.create 1024 in
    let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    addf "sspc top — node %s, %d counters, %d histograms\n"
      (if snap.S.node = "" then "-" else snap.S.node)
      (List.length snap.S.counters)
      (List.length snap.S.hists);
    (* Shard health + queue depth, from the merged gauges. Keys are
       shard.<node>.<metric> where <node> itself contains dots
       (host:port), so split by matching known metric suffixes. *)
    let shard_metrics =
      [ "up"; "server.queue_depth"; "store.entries"; "store.bytes";
        "store.evictions"; "feedback.last_report_age_s";
        "feedback.version_max"; "feedback.rounds" ]
    in
    let shards =
      List.filter_map
        (fun (name, v) ->
          if starts_with "shard." name then
            let rest = strip "shard." name in
            List.find_map
              (fun m ->
                let suffix = "." ^ m in
                let ls = String.length suffix and lr = String.length rest in
                if
                  lr > ls
                  && String.equal (String.sub rest (lr - ls) ls) suffix
                then Some (String.sub rest 0 (lr - ls), m, v)
                else None)
              shard_metrics
          else None)
        snap.S.gauges
    in
    let nodes =
      List.sort_uniq String.compare (List.map (fun (n, _, _) -> n) shards)
    in
    if nodes <> [] then begin
      addf "shards:\n";
      List.iter
        (fun node ->
          let find metric =
            List.find_map
              (fun (n, m, v) ->
                if String.equal n node && String.equal m metric then Some v
                else None)
              shards
          in
          let health =
            match find "up" with
            | Some v when v > 0.5 -> "up"
            | Some _ -> "DOWN"
            | None -> "?"
          in
          let depth =
            match find "server.queue_depth" with
            | Some v -> Printf.sprintf "%5.0f" v
            | None -> "    -"
          in
          let feedback =
            (* Liveness of the closed loop: highest published tuned
               version on this shard and seconds since the last
               attribution report landed. *)
            match (find "feedback.version_max", find "feedback.last_report_age_s")
            with
            | (Some v, age) when v > 0. ->
              Printf.sprintf "  tuned v%.0f%s" v
                (match age with
                | Some a when a >= 0. -> Printf.sprintf " (fb %.0fs ago)" a
                | _ -> "")
            | (_, Some a) when a >= 0. -> Printf.sprintf "  fb %.0fs ago" a
            | _ -> ""
          in
          addf "  %-28s %-5s queue %s%s\n" node health depth feedback)
        nodes
    end;
    (* Per-tenant req/s from served-counter deltas against the previous
       poll; p99 from the merged service-time histograms. *)
    let served t snap =
      match
        List.assoc_opt ("server.tenant." ^ t ^ ".served") snap.S.counters
      with
      | Some v -> v
      | None -> 0
    in
    let tenants =
      List.filter_map
        (fun (name, _) ->
          if starts_with "server.tenant." name then
            let rest = strip "server.tenant." name in
            match String.rindex_opt rest '.' with
            | Some i -> Some (String.sub rest 0 i)
            | None -> None
          else None)
        snap.S.counters
      |> List.sort_uniq String.compare
    in
    if tenants <> [] then begin
      addf "tenants:\n";
      addf "  %-20s %10s %10s %9s %9s\n" "" "served" "req/s" "p99 ms" "rejected";
      List.iter
        (fun t ->
          let now = served t snap in
          let rate =
            match prev with
            | Some p when dt > 0. -> float_of_int (now - served t p) /. dt
            | _ -> 0.
          in
          let p99 =
            match
              List.assoc_opt
                ("server.tenant." ^ t ^ ".service_ms")
                snap.S.hists
            with
            | Some h -> Printf.sprintf "%9.3f" (T.hist_quantile h 0.99)
            | None -> "        -"
          in
          let rejected =
            match
              List.assoc_opt
                ("server.tenant." ^ t ^ ".rejected")
                snap.S.counters
            with
            | Some v -> v
            | None -> 0
          in
          addf "  %-20s %10d %10.1f %s %9d\n" t now rate p99 rejected)
        tenants
    end;
    (match List.assoc_opt "server.service_ms" snap.S.hists with
    | Some h ->
      addf "service_ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  (n=%d)\n"
        (T.hist_quantile h 0.5) (T.hist_quantile h 0.9)
        (T.hist_quantile h 0.99) h.T.hs_max h.T.hs_n
    | None -> ());
    if snap.S.events_dropped > 0 then
      addf "telemetry events dropped: %d\n" snap.S.events_dropped;
    Buffer.contents b
  in
  let run addr interval iterations =
    guard @@ fun () ->
    let addr = cluster_addr_of addr in
    let interval = Float.max 0.05 interval in
    let prev = ref None in
    let t_prev = ref (Unix.gettimeofday ()) in
    let i = ref 0 in
    let continue () = iterations <= 0 || !i < iterations in
    while continue () do
      incr i;
      let snap = fetch_snapshot addr in
      let now = Unix.gettimeofday () in
      let dt = now -. !t_prev in
      (* \027[H\027[2J = home + clear: redraw in place on a terminal,
         harmless noise when piped. *)
      if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
      print_string (draw ~prev:!prev ~dt snap);
      flush stdout;
      prev := Some snap;
      t_prev := now;
      if continue () then Unix.sleepf interval
    done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live cluster view: poll the stats-snapshot plane and redraw \
          per-tenant request rates, p99 service time, shard queue depths \
          and shard health")
    Term.(const run $ addr_pos $ interval_arg $ iterations_arg)

let () =
  let info = Cmd.info "sspc" ~doc:"SSP post-pass binary adaptation tool" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd;
            exec_cmd;
            run_cmd;
            profile_cmd;
            adapt_cmd;
            fsck_cmd;
            sim_cmd;
            explain_cmd;
            tune_cmd;
            stats_cmd;
            top_cmd;
            chaos_cmd;
            serve_cmd;
            route_cmd;
            client_cmd;
            bench_cmd;
            table1_cmd;
          ]))
